package timeline

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"opportunet/internal/rng"
	"opportunet/internal/trace"
)

var inf = math.Inf(1)

// View is a (possibly filtered) read-only window onto a Timeline. The
// identity view exposes the whole trace; derived views add a keep-mask
// over the trace's contact slice and, for time windows, a clipping range.
// All index arrays are materialized lazily and at most once, so a View is
// safe for concurrent use by any number of goroutines.
//
// Filtering preserves the base sort order (clamping times to a window is
// monotone), so deriving a view is a linear scan — never a re-sort.
type View struct {
	tl *Timeline
	// keep masks the trace's contact slice; nil keeps everything. For
	// windowed views the mask already encodes the window's keep rule, so
	// consumers only ever combine the mask with clamping.
	keep  []bool
	nKept int
	// winA/winB is the observation window the view reports (Start/End).
	winA, winB float64
	// clip, when set, clamps contact times to [clipLo, clipHi] — the
	// intersection of every window applied along the derivation chain.
	clip           bool
	clipLo, clipHi float64

	adjOnce      sync.Once
	adjReady     atomic.Bool // set once ensureAdj has materialized
	adjOff       []int32
	adjByBeg     []DirContact
	adjByEnd     []DirContact
	adjSufMinBeg []float64

	pairOnce      sync.Once
	pairReady     atomic.Bool // set once ensurePairIndex has materialized
	pairOff       []int32
	pairByBeg     []Interval
	pairByEnd     []Interval
	pairSufMinBeg []float64

	partnerOnce sync.Once
	partnerOff  []int32
	partnerIDs  []trace.NodeID

	contactsOnce sync.Once
	contactList  []trace.Contact
}

func (v *View) isBase() bool { return v == v.tl.all }

func (v *View) kept(i int) bool { return v.keep == nil || v.keep[i] }

// clamp returns the contact interval as this view observes it.
func (v *View) clamp(beg, end float64) (float64, float64) {
	if !v.clip {
		return beg, end
	}
	if beg < v.clipLo {
		beg = v.clipLo
	}
	if end > v.clipHi {
		end = v.clipHi
	}
	return beg, end
}

// Timeline returns the owning timeline.
func (v *View) Timeline() *Timeline { return v.tl }

// --- metadata -------------------------------------------------------------

// Name returns the underlying trace's data-set name.
func (v *View) Name() string { return v.tl.tr.Name }

// Granularity returns the underlying trace's scan period.
func (v *View) Granularity() float64 { return v.tl.tr.Granularity }

// Start returns the beginning of the view's observation window.
func (v *View) Start() float64 { return v.winA }

// End returns the end of the view's observation window.
func (v *View) End() float64 { return v.winB }

// Duration returns the length of the view's observation window.
func (v *View) Duration() float64 { return v.winB - v.winA }

// NumNodes returns the device count (views never renumber devices).
func (v *View) NumNodes() int { return v.tl.tr.NumNodes() }

// NumInternal returns the number of internal devices.
func (v *View) NumInternal() int { return v.tl.tr.NumInternal() }

// InternalNodes returns the IDs of all internal devices in increasing
// order.
func (v *View) InternalNodes() []trace.NodeID { return v.tl.tr.InternalNodes() }

// Kinds returns the device-kind table, shared with the underlying trace;
// callers must not modify it.
func (v *View) Kinds() []trace.Kind { return v.tl.tr.Kinds }

// NumContacts returns the number of contacts the view keeps.
func (v *View) NumContacts() int { return v.nKept }

// Contacts returns the view's contact list, clipped to its window. The
// identity view shares the underlying trace's slice; callers must not
// modify the result.
func (v *View) Contacts() []trace.Contact {
	v.contactsOnce.Do(func() {
		if v.isBase() {
			v.contactList = v.tl.tr.Contacts
			return
		}
		out := make([]trace.Contact, 0, v.nKept)
		for i, c := range v.tl.tr.Contacts {
			if !v.kept(i) {
				continue
			}
			c.Beg, c.End = v.clamp(c.Beg, c.End)
			out = append(out, c)
		}
		v.contactList = out
	})
	return v.contactList
}

// Materialize copies the view out into a standalone trace with the view's
// window as the observation window. Mostly useful for tests and for
// interoperating with code that still wants a *trace.Trace.
func (v *View) Materialize() *trace.Trace {
	tr := v.tl.tr
	return &trace.Trace{
		Name:        tr.Name,
		Granularity: tr.Granularity,
		Start:       v.winA,
		End:         v.winB,
		Kinds:       append([]trace.Kind(nil), tr.Kinds...),
		Contacts:    append([]trace.Contact(nil), v.Contacts()...),
	}
}

// --- derived views --------------------------------------------------------

// derive starts a child view inheriting the window and clip range.
func (v *View) derive() *View {
	return &View{
		tl:     v.tl,
		winA:   v.winA,
		winB:   v.winB,
		clip:   v.clip,
		clipLo: v.clipLo,
		clipHi: v.clipHi,
	}
}

// InternalOnly returns a view keeping only contacts between internal
// devices (the default restriction of §5 for the conference data sets).
func (v *View) InternalOnly() *View {
	tr := v.tl.tr
	nv := v.derive()
	nv.keep = make([]bool, len(tr.Contacts))
	for i, c := range tr.Contacts {
		if v.kept(i) && tr.Kinds[c.A] == trace.Internal && tr.Kinds[c.B] == trace.Internal {
			nv.keep[i] = true
			nv.nKept++
		}
	}
	return nv
}

// MinDuration returns a view keeping only contacts lasting at least d
// seconds in this view's clipping (the duration-threshold removal of
// §6.2).
func (v *View) MinDuration(d float64) *View {
	tr := v.tl.tr
	nv := v.derive()
	nv.keep = make([]bool, len(tr.Contacts))
	for i, c := range tr.Contacts {
		if !v.kept(i) {
			continue
		}
		if b, e := v.clamp(c.Beg, c.End); e-b >= d {
			nv.keep[i] = true
			nv.nKept++
		}
	}
	return nv
}

// RemoveRandom returns a view in which each kept contact was removed
// independently with probability p (the random contact removal of §6.1).
// Exactly one Bernoulli draw is consumed per currently-kept contact, in
// trace order — the same stream consumption as trace.RemoveRandom on the
// materialized view, so seeded studies reproduce bit for bit.
func (v *View) RemoveRandom(p float64, r *rng.Source) *View {
	tr := v.tl.tr
	nv := v.derive()
	nv.keep = make([]bool, len(tr.Contacts))
	for i := range tr.Contacts {
		if !v.kept(i) {
			continue
		}
		if !r.Bool(p) {
			nv.keep[i] = true
			nv.nKept++
		}
	}
	return nv
}

// TimeWindow returns a view restricted to [a, b]: contact times are
// clipped to the window and the view's observation window becomes [a, b].
// A contact is kept iff it overlaps the window for a positive duration,
// or it is instantaneous and lies inside the closed window — the same
// boundary semantics as trace.TimeWindow.
func (v *View) TimeWindow(a, b float64) *View {
	tr := v.tl.tr
	nv := v.derive()
	nv.winA, nv.winB = a, b
	nv.clipLo, nv.clipHi = a, b
	if v.clip {
		if v.clipLo > nv.clipLo {
			nv.clipLo = v.clipLo
		}
		if v.clipHi < nv.clipHi {
			nv.clipHi = v.clipHi
		}
	}
	nv.clip = true
	nv.keep = make([]bool, len(tr.Contacts))
	for i, c := range tr.Contacts {
		if !v.kept(i) {
			continue
		}
		if cb, ce := v.clamp(c.Beg, c.End); windowKeeps(cb, ce, a, b) {
			nv.keep[i] = true
			nv.nKept++
		}
	}
	return nv
}

// windowKeeps reports whether a contact [beg, end] survives restriction
// to the window [a, b]: positive-length contacts must overlap the window
// for a positive duration (merely touching a boundary leaves nothing
// usable after clipping), instantaneous contacts must lie within the
// closed window.
func windowKeeps(beg, end, a, b float64) bool {
	if beg == end {
		return beg >= a && beg <= b
	}
	lo, hi := beg, end
	if lo < a {
		lo = a
	}
	if hi > b {
		hi = b
	}
	return hi > lo
}

// --- index materialization ------------------------------------------------

func (v *View) ensureAdj() {
	v.adjOnce.Do(func() {
		defer v.adjReady.Store(true)
		if v.isBase() {
			v.buildBaseAdj()
			return
		}
		tlMetrics.viewMats.Inc()
		base := v.tl.all
		base.ensureAdj()
		n := len(base.adjOff) - 1
		off := make([]int32, n+1)
		for u := 0; u < n; u++ {
			cnt := int32(0)
			for _, e := range base.adjByBeg[base.adjOff[u]:base.adjOff[u+1]] {
				if v.kept(int(e.CIdx)) {
					cnt++
				}
			}
			off[u+1] = off[u] + cnt
		}
		total := off[n]
		byBeg := make([]DirContact, 0, total)
		byEnd := make([]DirContact, 0, total)
		for u := 0; u < n; u++ {
			for _, e := range base.adjByBeg[base.adjOff[u]:base.adjOff[u+1]] {
				if v.kept(int(e.CIdx)) {
					e.Beg, e.End = v.clamp(e.Beg, e.End)
					byBeg = append(byBeg, e)
				}
			}
			for _, e := range base.adjByEnd[base.adjOff[u]:base.adjOff[u+1]] {
				if v.kept(int(e.CIdx)) {
					e.Beg, e.End = v.clamp(e.Beg, e.End)
					byEnd = append(byEnd, e)
				}
			}
		}
		v.adjOff = off
		v.adjByBeg = byBeg
		v.adjByEnd = byEnd
		v.adjSufMinBeg = sufMinBegAdj(off, byEnd)
	})
}

func (v *View) ensurePairIndex() {
	v.pairOnce.Do(func() {
		defer v.pairReady.Store(true)
		if v.isBase() {
			v.buildBasePairs()
			return
		}
		tlMetrics.viewMats.Inc()
		base := v.tl.all
		base.ensurePairIndex()
		np := len(base.pairOff) - 1
		off := make([]int32, np+1)
		for p := 0; p < np; p++ {
			cnt := int32(0)
			for _, iv := range base.pairByBeg[base.pairOff[p]:base.pairOff[p+1]] {
				if v.kept(int(iv.CIdx)) {
					cnt++
				}
			}
			off[p+1] = off[p] + cnt
		}
		total := off[np]
		byBeg := make([]Interval, 0, total)
		byEnd := make([]Interval, 0, total)
		for p := 0; p < np; p++ {
			for _, iv := range base.pairByBeg[base.pairOff[p]:base.pairOff[p+1]] {
				if v.kept(int(iv.CIdx)) {
					iv.Beg, iv.End = v.clamp(iv.Beg, iv.End)
					byBeg = append(byBeg, iv)
				}
			}
			for _, iv := range base.pairByEnd[base.pairOff[p]:base.pairOff[p+1]] {
				if v.kept(int(iv.CIdx)) {
					iv.Beg, iv.End = v.clamp(iv.Beg, iv.End)
					byEnd = append(byEnd, iv)
				}
			}
		}
		v.pairOff = off
		v.pairByBeg = byBeg
		v.pairByEnd = byEnd
		v.pairSufMinBeg = sufMinBegPairs(off, byEnd)
	})
}

func (v *View) ensurePartners() {
	v.partnerOnce.Do(func() {
		if v.isBase() {
			tlMetrics.indexBuilds.Inc()
		} else {
			tlMetrics.viewMats.Inc()
		}
		tl := v.tl
		tl.ensurePairs()
		tr := tl.tr
		n := tr.NumNodes()
		seen := make([]bool, len(tl.pairA))
		lists := make([][]trace.NodeID, n)
		for i, c := range tr.Contacts {
			if !v.kept(i) {
				continue
			}
			id := tl.pairID[PairKey(c.A, c.B)]
			if seen[id] {
				continue
			}
			seen[id] = true
			lists[c.A] = append(lists[c.A], c.B)
			lists[c.B] = append(lists[c.B], c.A)
		}
		off := make([]int32, n+1)
		for u := 0; u < n; u++ {
			off[u+1] = off[u] + int32(len(lists[u]))
		}
		flat := make([]trace.NodeID, 0, off[n])
		for u := 0; u < n; u++ {
			flat = append(flat, lists[u]...)
		}
		v.partnerOff = off
		v.partnerIDs = flat
	})
}

// --- queries --------------------------------------------------------------

// OutgoingByBeg returns the usable contact directions leaving u, sorted
// by non-decreasing begin time (canonical (Beg, End, To) order on the
// identity view). The slice is shared; callers must not modify it.
func (v *View) OutgoingByBeg(u trace.NodeID) []DirContact {
	v.ensureAdj()
	return v.adjByBeg[v.adjOff[u]:v.adjOff[u+1]]
}

// OutgoingByEnd returns the usable contact directions leaving u, sorted
// by non-decreasing end time. The slice is shared; callers must not
// modify it.
func (v *View) OutgoingByEnd(u trace.NodeID) []DirContact {
	v.ensureAdj()
	return v.adjByEnd[v.adjOff[u]:v.adjOff[u+1]]
}

// OutgoingAfter returns the usable contact directions leaving u that are
// still open at or after time t (End >= t), sorted by non-decreasing end
// time — the δ-slice accessor of the reach layer: slicing the [t, ∞)
// tail out of u's adjacency is one binary search on the shared
// end-sorted arrays, so composing reachability products over successive
// starting times never copies or re-sorts contacts. The slice is shared;
// callers must not modify it.
func (v *View) OutgoingAfter(u trace.NodeID, t float64) []DirContact {
	tlMetrics.sliceQueries.Inc()
	v.ensureAdj()
	lo, hi := int(v.adjOff[u]), int(v.adjOff[u+1])
	seg := v.adjByEnd[lo:hi]
	i := sort.Search(len(seg), func(i int) bool { return seg[i].End >= t })
	return seg[i:]
}

// ForOutgoingAfter invokes yield with one or more end-sorted runs that
// together contain exactly the usable contact directions leaving u with
// End >= t. On a streaming base view whose adjacency is not yet
// materialized the runs are the per-segment tails (one binary search
// per sealed segment, no merged index ever built — the incremental
// engine's relaxation path); otherwise yield receives the single
// materialized tail, exactly OutgoingAfter's slice. CIdx values are
// local to the index the run came from; consumers that only read
// To/Beg/End/Fwd are order-insensitive across runs. The runs are
// shared; callers must not modify or retain them past the call.
func (v *View) ForOutgoingAfter(u trace.NodeID, t float64, yield func(run []DirContact)) {
	tlMetrics.sliceQueries.Inc()
	if segs := v.tl.segs; segs != nil && v.isBase() && !v.adjReady.Load() {
		for _, s := range segs {
			if s.maxEnd < t {
				continue
			}
			if run := s.outgoingAfter(u, t); len(run) > 0 {
				yield(run)
			}
		}
		return
	}
	v.ensureAdj()
	lo, hi := int(v.adjOff[u]), int(v.adjOff[u+1])
	seg := v.adjByEnd[lo:hi]
	i := sort.Search(len(seg), func(i int) bool { return seg[i].End >= t })
	if i < len(seg) {
		yield(seg[i:])
	}
}

// OutgoingIndex returns u's usable contact directions in both sort
// orders plus the suffix minimum of begin times aligned with the
// end-sorted slice: sufMinBeg[i] is the smallest Beg among byEnd[i:].
// This is the bulk form of the δ-slice accessor for sweeps that
// repeatedly partition u's adjacency around a moving departure time —
// the contacts still open at t are the byEnd entries past one binary
// search (stopping early once sufMinBeg exceeds t), and the contacts
// beginning after t are a byBeg suffix. All three slices are shared;
// callers must not modify them.
func (v *View) OutgoingIndex(u trace.NodeID) (byBeg, byEnd []DirContact, sufMinBeg []float64) {
	tlMetrics.sliceQueries.Inc()
	v.ensureAdj()
	lo, hi := v.adjOff[u], v.adjOff[u+1]
	return v.adjByBeg[lo:hi], v.adjByEnd[lo:hi], v.adjSufMinBeg[lo:hi]
}

// Adjacency returns the view's packed adjacency wholesale: node u's
// usable contact directions are byBeg[off[u]:off[u+1]] (begin-sorted)
// and byEnd[off[u]:off[u+1]] (end-sorted), with sufMinBeg aligned to
// byEnd as in OutgoingIndex. Sweeps that index the adjacency once per
// relaxed node use this to hoist the per-call overhead of the sliced
// accessors out of their hot loops. All four slices are shared; callers
// must not modify them.
func (v *View) Adjacency() (off []int32, byBeg, byEnd []DirContact, sufMinBeg []float64) {
	tlMetrics.sliceQueries.Inc()
	v.ensureAdj()
	return v.adjOff, v.adjByBeg, v.adjByEnd, v.adjSufMinBeg
}

// Partners returns the devices u ever shares a contact with, ordered by
// the first contact of each pair in trace order (the tie-break order the
// forwarding algorithms rely on). The slice is shared; callers must not
// modify it.
func (v *View) Partners(u trace.NodeID) []trace.NodeID {
	v.ensurePartners()
	return v.partnerIDs[v.partnerOff[u]:v.partnerOff[u+1]]
}

// Meet returns the earliest time at or after t at which devices u and w
// share a contact (i.e. a transfer between them can happen), or +Inf:
// binary search for the first interval ending at or after t, whose
// suffix-min begin bounds how early the meeting can start.
func (v *View) Meet(u, w trace.NodeID, t float64) float64 {
	tlMetrics.meets.Inc()
	// Streaming snapshots answer straight off the sealed segments (one
	// binary search each) until some consumer has paid for the merged
	// canonical index, after which the single materialized search wins.
	if segs := v.tl.segs; segs != nil && v.isBase() && !v.pairReady.Load() {
		key := PairKey(u, w)
		best := inf
		for _, s := range segs {
			if m := s.meet(key, t); m < best {
				best = m
			}
		}
		return best
	}
	v.ensurePairIndex()
	id, ok := v.tl.pairID[PairKey(u, w)]
	if !ok {
		return inf
	}
	lo, hi := int(v.pairOff[id]), int(v.pairOff[id+1])
	seg := v.pairByEnd[lo:hi]
	i := sort.Search(len(seg), func(i int) bool { return seg[i].End >= t })
	if i == len(seg) {
		return inf
	}
	return math.Max(t, v.pairSufMinBeg[lo+i])
}

// NextContact returns the earliest time at or after t at which device u
// is in contact with any other device, or +Inf.
func (v *View) NextContact(u trace.NodeID, t float64) float64 {
	tlMetrics.nextContact.Inc()
	if segs := v.tl.segs; segs != nil && v.isBase() && !v.adjReady.Load() {
		best := inf
		for _, s := range segs {
			if m := s.nextContact(u, t); m < best {
				best = m
			}
		}
		return best
	}
	v.ensureAdj()
	lo, hi := int(v.adjOff[u]), int(v.adjOff[u+1])
	seg := v.adjByEnd[lo:hi]
	i := sort.Search(len(seg), func(i int) bool { return seg[i].End >= t })
	if i == len(seg) {
		return inf
	}
	return math.Max(t, v.adjSufMinBeg[lo+i])
}

// PairIntervals returns pair p's meeting intervals sorted by begin time,
// where p is a canonical pair ID in [0, Timeline.NumPairs()). The slice
// is shared; callers must not modify it.
func (v *View) PairIntervals(p int) []Interval {
	v.ensurePairIndex()
	return v.pairByBeg[v.pairOff[p]:v.pairOff[p+1]]
}

// PairEndpoints returns the canonical endpoints (a < b) of pair ID p.
func (v *View) PairEndpoints(p int) (a, b trace.NodeID) {
	v.tl.ensurePairs()
	return v.tl.pairA[p], v.tl.pairB[p]
}
