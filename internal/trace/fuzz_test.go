package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTrace feeds arbitrary text to the trace parser: it must never
// panic, must reject non-finite and reversed contact times, and
// whatever it accepts must survive a Validate → Write → Read round trip
// unchanged.
func FuzzReadTrace(f *testing.F) {
	f.Add("# trace x\n# nodes 3\n0 1 0 5\n1 2 3 9\n")
	f.Add("0 1 0 5\n")
	f.Add("# external 1\n# nodes 2\n0 1 1e3 2e3\n")
	f.Add("# granularity 120\n# window 0 100\n")
	f.Add("garbage\n\n# nodes\n")
	f.Add("0 1 5 4\n")
	// Mutated headers and bodies around the hardened edges.
	f.Add("# nodes 2\n0 1 NaN 5\n")
	f.Add("# nodes 2\n0 1 0 Inf\n")
	f.Add("# window -Inf NaN\n0 1 0 5\n")
	f.Add("# granularity NaN\n")
	f.Add("# nodes 2\n0 1 9 5\n")
	f.Add("# trace\n# external -1\n0 1 1e308 1e309\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted traces must be valid and round-trippable.
		if err := tr.Validate(); err != nil {
			t.Fatalf("Read accepted an invalid trace: %v", err)
		}
		for i, c := range tr.Contacts {
			if !finite(c.Beg) || !finite(c.End) || c.End < c.Beg {
				t.Fatalf("Read accepted bad contact %d: %+v", i, c)
			}
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("Write failed: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.NumNodes() != tr.NumNodes() || len(back.Contacts) != len(tr.Contacts) {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				back.NumNodes(), len(back.Contacts), tr.NumNodes(), len(tr.Contacts))
		}
		for i := range back.Contacts {
			if back.Contacts[i] != tr.Contacts[i] {
				t.Fatalf("round trip changed contact %d", i)
			}
		}
	})
}
