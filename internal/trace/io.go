package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// finite reports whether a parsed time value is an ordinary number.
// NaN and ±Inf parse successfully but would poison every downstream
// comparison, so Read rejects them at the line that carries them.
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// The on-disk format is a line-oriented text format close to the one used
// for published iMote trace releases:
//
//	# trace infocom05
//	# granularity 120
//	# window 0 259200
//	# nodes 41
//	# external 38 39 40
//	0 1 3600 3720
//	...
//
// Header lines start with '#'; body lines are "A B Beg End". The
// "external" header lists device IDs that are external Bluetooth devices;
// all others are internal.

// Write serializes the trace in the text format above.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# trace %s\n", t.Name)
	fmt.Fprintf(bw, "# granularity %g\n", t.Granularity)
	fmt.Fprintf(bw, "# window %g %g\n", t.Start, t.End)
	fmt.Fprintf(bw, "# nodes %d\n", t.NumNodes())
	var ext []string
	for id, k := range t.Kinds {
		if k == External {
			ext = append(ext, strconv.Itoa(id))
		}
	}
	if len(ext) > 0 {
		fmt.Fprintf(bw, "# external %s\n", strings.Join(ext, " "))
	}
	for _, c := range t.Contacts {
		fmt.Fprintf(bw, "%d %d %g %g\n", c.A, c.B, c.Beg, c.End)
	}
	return bw.Flush()
}

// Read parses a trace from the text format written by Write. It
// validates the result before returning it.
func Read(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var external []int
	nodes := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(strings.TrimPrefix(text, "#"))
			if len(fields) == 0 {
				continue
			}
			switch fields[0] {
			case "trace":
				if len(fields) > 1 {
					t.Name = fields[1]
				}
			case "granularity":
				if len(fields) != 2 {
					return nil, fmt.Errorf("trace: line %d: malformed granularity header", line)
				}
				g, err := strconv.ParseFloat(fields[1], 64)
				if err != nil || !finite(g) {
					return nil, fmt.Errorf("trace: line %d: bad granularity %q", line, fields[1])
				}
				t.Granularity = g
			case "window":
				if len(fields) != 3 {
					return nil, fmt.Errorf("trace: line %d: malformed window header", line)
				}
				a, err1 := strconv.ParseFloat(fields[1], 64)
				b, err2 := strconv.ParseFloat(fields[2], 64)
				if err1 != nil || err2 != nil || !finite(a) || !finite(b) {
					return nil, fmt.Errorf("trace: line %d: malformed window values", line)
				}
				t.Start, t.End = a, b
			case "nodes":
				if len(fields) != 2 {
					return nil, fmt.Errorf("trace: line %d: malformed nodes header", line)
				}
				n, err := strconv.Atoi(fields[1])
				if err != nil || n < 0 {
					return nil, fmt.Errorf("trace: line %d: bad node count %q", line, fields[1])
				}
				nodes = n
			case "external":
				for _, f := range fields[1:] {
					id, err := strconv.Atoi(f)
					if err != nil {
						return nil, fmt.Errorf("trace: line %d: bad external id %q", line, f)
					}
					external = append(external, id)
				}
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 4 {
			return nil, fmt.Errorf("trace: line %d: want 4 fields, got %d", line, len(fields))
		}
		a, err1 := strconv.Atoi(fields[0])
		b, err2 := strconv.Atoi(fields[1])
		beg, err3 := strconv.ParseFloat(fields[2], 64)
		end, err4 := strconv.ParseFloat(fields[3], 64)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return nil, fmt.Errorf("trace: line %d: malformed contact %q", line, text)
		}
		if !finite(beg) || !finite(end) {
			return nil, fmt.Errorf("trace: line %d: non-finite contact time in %q", line, text)
		}
		if end < beg {
			return nil, fmt.Errorf("trace: line %d: contact ends before it begins (%g < %g)", line, end, beg)
		}
		t.Contacts = append(t.Contacts, Contact{A: NodeID(a), B: NodeID(b), Beg: beg, End: end})
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			// The scanner stops before delivering the oversized line, so
			// the failure is on the line after the last one scanned.
			return nil, fmt.Errorf("trace: line %d: %w", line+1, err)
		}
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	if nodes < 0 {
		// Infer from the highest device ID seen.
		maxID := -1
		for _, c := range t.Contacts {
			if int(c.A) > maxID {
				maxID = int(c.A)
			}
			if int(c.B) > maxID {
				maxID = int(c.B)
			}
		}
		nodes = maxID + 1
	}
	t.Kinds = make([]Kind, nodes)
	for _, id := range external {
		if id < 0 || id >= nodes {
			return nil, fmt.Errorf("trace: external id %d out of range (nodes=%d)", id, nodes)
		}
		t.Kinds[id] = External
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
