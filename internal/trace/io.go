package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// finite reports whether a parsed time value is an ordinary number.
// NaN and ±Inf parse successfully but would poison every downstream
// comparison, so Read rejects them at the line that carries them.
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// The on-disk format is a line-oriented text format close to the one used
// for published iMote trace releases:
//
//	# trace infocom05
//	# granularity 120
//	# window 0 259200
//	# nodes 41
//	# external 38 39 40
//	0 1 3600 3720
//	...
//
// Header lines start with '#'; body lines are "A B Beg End". The
// "external" header lists device IDs that are external Bluetooth devices;
// all others are internal.

// Write serializes the trace in the text format above.
func (t *Trace) Write(w io.Writer) error {
	tw := NewWriter(w, t.Header())
	for _, c := range t.Contacts {
		tw.WriteContact(c)
	}
	return tw.Flush()
}

// Read parses a trace from the text format written by Write. It buffers
// the whole trace in memory; use Stream for bounded-memory ingestion.
// Unlike Stream, Read accepts header lines anywhere in the file (a later
// header overrides an earlier one) and infers the node count from the
// highest device ID when the "# nodes" header is absent. It validates
// the result before returning it.
func Read(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	h := Header{Nodes: -1}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(strings.TrimPrefix(text, "#"))
			if len(fields) == 0 {
				continue
			}
			if err := applyHeader(&h, line, fields); err != nil {
				return nil, err
			}
			continue
		}
		c, err := ParseContactLine(line, text)
		if err != nil {
			return nil, err
		}
		t.Contacts = append(t.Contacts, c)
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			// The scanner stops before delivering the oversized line, so
			// the failure is on the line after the last one scanned.
			return nil, fmt.Errorf("trace: line %d: %w", line+1, err)
		}
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	t.Name, t.Granularity, t.Start, t.End = h.Name, h.Granularity, h.Start, h.End
	if h.Nodes < 0 {
		// Infer from the highest device ID seen.
		maxID := -1
		for _, c := range t.Contacts {
			if int(c.A) > maxID {
				maxID = int(c.A)
			}
			if int(c.B) > maxID {
				maxID = int(c.B)
			}
		}
		h.Nodes = maxID + 1
	}
	if err := h.checkExternal(); err != nil {
		return nil, err
	}
	t.Kinds = h.Kinds()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
