package trace

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"opportunet/internal/rng"
)

func TestRoundTrip(t *testing.T) {
	tr := tiny()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Granularity != tr.Granularity ||
		got.Start != tr.Start || got.End != tr.End {
		t.Fatalf("metadata mismatch: %+v vs %+v", got, tr)
	}
	if got.NumNodes() != tr.NumNodes() || got.NumInternal() != tr.NumInternal() {
		t.Fatalf("device set mismatch")
	}
	if len(got.Contacts) != len(tr.Contacts) {
		t.Fatalf("contact count %d, want %d", len(got.Contacts), len(tr.Contacts))
	}
	for i := range got.Contacts {
		if got.Contacts[i] != tr.Contacts[i] {
			t.Fatalf("contact %d: %+v vs %+v", i, got.Contacts[i], tr.Contacts[i])
		}
	}
}

func TestRoundTripPropertyRandomTraces(t *testing.T) {
	// Any structurally valid random trace must survive a write/read cycle.
	r := rng.New(99)
	err := quick.Check(func(seed uint64) bool {
		n := 2 + r.Intn(20)
		tr := &Trace{Name: "prop", Granularity: 60, Start: 0, End: 10000, Kinds: make([]Kind, n)}
		for i := range tr.Kinds {
			if r.Bool(0.2) {
				tr.Kinds[i] = External
			}
		}
		for c := 0; c < r.Intn(50); c++ {
			a := NodeID(r.Intn(n))
			b := NodeID(r.Intn(n))
			if a == b {
				continue
			}
			beg := r.Uniform(0, 9000)
			tr.Contacts = append(tr.Contacts, Contact{A: a, B: b, Beg: beg, End: beg + r.Uniform(0, 1000)})
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.NumNodes() != tr.NumNodes() || len(got.Contacts) != len(tr.Contacts) {
			return false
		}
		for i := range got.Contacts {
			if got.Contacts[i] != tr.Contacts[i] {
				return false
			}
		}
		for i := range got.Kinds {
			if got.Kinds[i] != tr.Kinds[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReadInfersNodes(t *testing.T) {
	in := "0 5 10 20\n1 2 30 40\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() != 6 {
		t.Fatalf("inferred %d nodes, want 6", tr.NumNodes())
	}
}

func TestReadSkipsBlankAndComments(t *testing.T) {
	in := "# trace x\n\n# some free comment\n0 1 0 5\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Contacts) != 1 || tr.Name != "x" {
		t.Fatalf("unexpected parse: %+v", tr)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"0 1 0\n",                   // missing field
		"0 1 0 5 9\n",               // extra field
		"a 1 0 5\n",                 // bad id
		"0 1 x 5\n",                 // bad time
		"# nodes -3\n0 1 0 5\n",     // bad node count
		"# nodes two\n",             // unparsable node count
		"# external 9\n# nodes 2\n", // external out of range
		"# granularity\n",           // malformed header
		"# window 1\n",              // malformed window
		"# nodes 2\n0 1 5 1\n",      // negative duration caught by Validate
		"# nodes 1\n0 0 1 2\n",      // self contact
		"# nodes 2\n0 1 NaN 5\n",    // non-finite begin
		"# nodes 2\n0 1 0 +Inf\n",   // non-finite end
		"# nodes 2\n0 1 -Inf 5\n",   // non-finite begin
		"# window NaN 100\n",        // non-finite window
		"# window 0 Inf\n",          // non-finite window
		"# granularity NaN\n",       // non-finite granularity
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read accepted malformed input %q", in)
		}
	}
}

// TestReadErrorsCarryLineNumbers: corrupt input is diagnosed at the
// line that carries it, so a bad row in a million-line trace file can
// actually be found.
func TestReadErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"# nodes 3\n0 1 0 5\n0 2 NaN 7\n", "line 3: non-finite contact time"},
		{"# nodes 3\n0 1 9 5\n", "line 2: contact ends before it begins (5 < 9)"},
		{"0 1 0 5\n\n0 2 Inf Inf\n", "line 3: non-finite contact time"},
	}
	for _, tc := range cases {
		_, err := Read(strings.NewReader(tc.in))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Read(%q) = %v, want error containing %q", tc.in, err, tc.want)
		}
	}
}

// TestReadLineTooLong: a line past the scanner's 1 MiB cap fails with a
// trace error naming the offending line, not a bare bufio.ErrTooLong.
func TestReadLineTooLong(t *testing.T) {
	in := "# nodes 2\n0 1 0 5\n# " + strings.Repeat("x", 2<<20) + "\n"
	_, err := Read(strings.NewReader(in))
	if err == nil {
		t.Fatal("Read accepted an oversized line")
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("err = %v, want wrapped bufio.ErrTooLong", err)
	}
	if !strings.Contains(err.Error(), "trace: line 3:") {
		t.Fatalf("err %q does not name the offending line", err)
	}
}
