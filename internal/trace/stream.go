package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Header is the metadata block of the line-oriented trace format: what
// the '#' lines carry, independent of the contact body. It is what a
// streaming consumer needs before the first contact arrives — window,
// granularity and the device table — and what Writer emits verbatim.
type Header struct {
	Name        string
	Granularity float64
	Start, End  float64
	Nodes       int // -1 when no "# nodes" header was present
	External    []int
}

// Header extracts the metadata block of an in-memory trace — what
// NewWriter needs to start serializing it.
func (t *Trace) Header() Header {
	h := Header{
		Name:        t.Name,
		Granularity: t.Granularity,
		Start:       t.Start,
		End:         t.End,
		Nodes:       t.NumNodes(),
	}
	for id, k := range t.Kinds {
		if k == External {
			h.External = append(h.External, id)
		}
	}
	return h
}

// Kinds expands the header's device table, or nil when the node count
// was absent. External IDs must be validated (checkExternal) first.
func (h Header) Kinds() []Kind {
	if h.Nodes < 0 {
		return nil
	}
	kinds := make([]Kind, h.Nodes)
	for _, id := range h.External {
		if id >= 0 && id < h.Nodes {
			kinds[id] = External
		}
	}
	return kinds
}

func (h Header) checkExternal() error {
	if h.Nodes < 0 {
		return nil
	}
	for _, id := range h.External {
		if id < 0 || id >= h.Nodes {
			return fmt.Errorf("trace: external id %d out of range (nodes=%d)", id, h.Nodes)
		}
	}
	return nil
}

// applyHeader folds one parsed '#' line into the header. fields is the
// whitespace-split line with the '#' stripped; the caller guarantees it
// is non-empty. Unknown header keys are ignored, like Read always has.
func applyHeader(h *Header, line int, fields []string) error {
	switch fields[0] {
	case "trace":
		if len(fields) > 1 {
			h.Name = fields[1]
		}
	case "granularity":
		if len(fields) != 2 {
			return fmt.Errorf("trace: line %d: malformed granularity header", line)
		}
		g, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || !finite(g) {
			return fmt.Errorf("trace: line %d: bad granularity %q", line, fields[1])
		}
		h.Granularity = g
	case "window":
		if len(fields) != 3 {
			return fmt.Errorf("trace: line %d: malformed window header", line)
		}
		a, err1 := strconv.ParseFloat(fields[1], 64)
		b, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil || !finite(a) || !finite(b) {
			return fmt.Errorf("trace: line %d: malformed window values", line)
		}
		h.Start, h.End = a, b
	case "nodes":
		if len(fields) != 2 {
			return fmt.Errorf("trace: line %d: malformed nodes header", line)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			return fmt.Errorf("trace: line %d: bad node count %q", line, fields[1])
		}
		h.Nodes = n
	case "external":
		for _, f := range fields[1:] {
			id, err := strconv.Atoi(f)
			if err != nil {
				return fmt.Errorf("trace: line %d: bad external id %q", line, f)
			}
			h.External = append(h.External, id)
		}
	}
	return nil
}

// ParseContactLine parses one "A B Beg End" body line, attributing
// errors to the given 1-based line number. This is the exact validation
// Read applies per contact line, exported so network feeds (the ingest
// line protocol) reject bad input with the same diagnostics.
func ParseContactLine(line int, text string) (Contact, error) {
	fields := strings.Fields(text)
	if len(fields) != 4 {
		return Contact{}, fmt.Errorf("trace: line %d: want 4 fields, got %d", line, len(fields))
	}
	a, err1 := strconv.Atoi(fields[0])
	b, err2 := strconv.Atoi(fields[1])
	beg, err3 := strconv.ParseFloat(fields[2], 64)
	end, err4 := strconv.ParseFloat(fields[3], 64)
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
		return Contact{}, fmt.Errorf("trace: line %d: malformed contact %q", line, text)
	}
	if !finite(beg) || !finite(end) {
		return Contact{}, fmt.Errorf("trace: line %d: non-finite contact time in %q", line, text)
	}
	if end < beg {
		return Contact{}, fmt.Errorf("trace: line %d: contact ends before it begins (%g < %g)", line, end, beg)
	}
	return Contact{A: NodeID(a), B: NodeID(b), Beg: beg, End: end}, nil
}

// DefaultStreamBatch is the contact batch size Stream uses when the
// caller passes batchSize <= 0.
const DefaultStreamBatch = 4096

// Stream parses the trace format incrementally in bounded memory: at
// most one batch of contacts is alive at a time. The header callback
// fires exactly once, before the first emit (or at EOF for a body-less
// input); emit receives contacts in file order, in batches of at most
// batchSize (DefaultStreamBatch when <= 0). The batch slice is reused
// between calls — emit must copy anything it keeps, which appending to
// a timeline.Appender does. Either callback may be nil, and a non-nil
// callback error aborts the stream and is returned as-is.
//
// Per-line validation and error attribution match Read exactly, with
// two deliberate differences forced by the bounded-memory contract:
// header lines are only honoured before the first contact (Read lets a
// late header override an early one; a streaming consumer has already
// acted on the header, so a late one is a hard error), and when the
// "# nodes" header is absent the node count is reported as -1 instead
// of inferred from the body (Read infers it after buffering the whole
// file). Device-range and self-contact violations — Read's
// Validate-time checks — are reported at the offending line, with the
// range check skipped when the node count is unknown.
func Stream(r io.Reader, batchSize int, header func(Header) error, emit func([]Contact) error) error {
	if batchSize <= 0 {
		batchSize = DefaultStreamBatch
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	h := Header{Nodes: -1}
	headerDone := false
	finishHeader := func() error {
		headerDone = true
		if err := h.checkExternal(); err != nil {
			return err
		}
		if header != nil {
			return header(h)
		}
		return nil
	}
	batch := make([]Contact, 0, batchSize)
	flush := func() error {
		if len(batch) == 0 || emit == nil {
			return nil
		}
		err := emit(batch)
		batch = batch[:0]
		return err
	}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(strings.TrimPrefix(text, "#"))
			if len(fields) == 0 {
				continue
			}
			if headerDone {
				return fmt.Errorf("trace: line %d: header %q after first contact in stream", line, fields[0])
			}
			if err := applyHeader(&h, line, fields); err != nil {
				return err
			}
			continue
		}
		if !headerDone {
			if err := finishHeader(); err != nil {
				return err
			}
		}
		c, err := ParseContactLine(line, text)
		if err != nil {
			return err
		}
		if h.Nodes >= 0 && (int(c.A) >= h.Nodes || int(c.B) >= h.Nodes || c.A < 0 || c.B < 0) {
			return fmt.Errorf("trace: line %d: contact references device out of range (%d, %d, n=%d)", line, c.A, c.B, h.Nodes)
		}
		if c.A == c.B {
			return fmt.Errorf("trace: line %d: self-contact on device %d", line, c.A)
		}
		batch = append(batch, c)
		if len(batch) >= batchSize {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			// The scanner stops before delivering the oversized line, so
			// the failure is on the line after the last one scanned.
			return fmt.Errorf("trace: line %d: %w", line+1, err)
		}
		return fmt.Errorf("trace: read: %w", err)
	}
	if !headerDone {
		if err := finishHeader(); err != nil {
			return err
		}
	}
	return flush()
}

// Writer emits the trace format incrementally: the header at
// construction, one contact per WriteContact, bytes identical to
// Trace.Write (which is implemented on top of it). A Writer keeps the
// first write error and reports it from every later call, so a long
// generation loop can defer error handling to the final Flush.
type Writer struct {
	bw  *bufio.Writer
	err error
}

// NewWriter starts the text serialization of a trace with the given
// header. A negative Nodes count suppresses the "# nodes" line (the
// reader will infer the count from the body).
func NewWriter(w io.Writer, h Header) *Writer {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# trace %s\n", h.Name)
	fmt.Fprintf(bw, "# granularity %g\n", h.Granularity)
	fmt.Fprintf(bw, "# window %g %g\n", h.Start, h.End)
	if h.Nodes >= 0 {
		fmt.Fprintf(bw, "# nodes %d\n", h.Nodes)
	}
	if len(h.External) > 0 {
		ext := make([]string, len(h.External))
		for i, id := range h.External {
			ext[i] = strconv.Itoa(id)
		}
		fmt.Fprintf(bw, "# external %s\n", strings.Join(ext, " "))
	}
	return &Writer{bw: bw}
}

// WriteContact appends one body line.
func (w *Writer) WriteContact(c Contact) error {
	if w.err != nil {
		return w.err
	}
	_, w.err = fmt.Fprintf(w.bw, "%d %d %g %g\n", c.A, c.B, c.Beg, c.End)
	return w.err
}

// Flush drains the buffer and returns the first error seen on any
// write, including the header lines.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}
