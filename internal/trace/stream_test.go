package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"opportunet/internal/rng"
)

func streamTestTrace(t *testing.T) *Trace {
	t.Helper()
	r := rng.New(42)
	tr := &Trace{Name: "stream-test", Granularity: 60, Start: 0, End: 5000,
		Kinds: make([]Kind, 12)}
	tr.Kinds[10] = External
	tr.Kinds[11] = External
	for i := 0; i < 300; i++ {
		a, b := NodeID(r.Intn(12)), NodeID(r.Intn(12))
		if a == b {
			continue
		}
		beg := r.Uniform(0, 4000)
		tr.Contacts = append(tr.Contacts, Contact{A: a, B: b, Beg: beg, End: beg + r.Uniform(0, 500)})
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestWriterMatchesTraceWrite pins the byte identity Writer promises:
// serializing contact by contact produces exactly Trace.Write's output.
func TestWriterMatchesTraceWrite(t *testing.T) {
	tr := streamTestTrace(t)
	var batch bytes.Buffer
	if err := tr.Write(&batch); err != nil {
		t.Fatal(err)
	}
	var inc bytes.Buffer
	w := NewWriter(&inc, tr.Header())
	for _, c := range tr.Contacts {
		if err := w.WriteContact(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(batch.Bytes(), inc.Bytes()) {
		t.Fatalf("Writer output differs from Trace.Write:\n--- batch ---\n%s\n--- incremental ---\n%s",
			batch.String(), inc.String())
	}
}

// TestStreamMatchesRead round-trips a trace through Write and checks
// that Stream delivers the same header and the same contacts, in order,
// as Read — across several batch sizes including ones that do not
// divide the contact count.
func TestStreamMatchesRead(t *testing.T) {
	tr := streamTestTrace(t)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	got, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for _, batchSize := range []int{1, 7, 100, 0, 1 << 20} {
		var h Header
		headerCalls := 0
		var contacts []Contact
		maxBatch := 0
		err := Stream(bytes.NewReader(data), batchSize,
			func(hd Header) error { h = hd; headerCalls++; return nil },
			func(batch []Contact) error {
				if len(batch) > maxBatch {
					maxBatch = len(batch)
				}
				contacts = append(contacts, batch...)
				return nil
			})
		if err != nil {
			t.Fatalf("batchSize %d: %v", batchSize, err)
		}
		if headerCalls != 1 {
			t.Fatalf("batchSize %d: header fired %d times", batchSize, headerCalls)
		}
		if h.Name != got.Name || h.Granularity != got.Granularity ||
			h.Start != got.Start || h.End != got.End || h.Nodes != got.NumNodes() {
			t.Fatalf("batchSize %d: header %+v does not match Read result", batchSize, h)
		}
		if len(h.External) != 2 || h.External[0] != 10 || h.External[1] != 11 {
			t.Fatalf("batchSize %d: external = %v", batchSize, h.External)
		}
		want := batchSize
		if want <= 0 {
			want = DefaultStreamBatch
		}
		if maxBatch > want {
			t.Fatalf("batchSize %d: saw batch of %d", batchSize, maxBatch)
		}
		if len(contacts) != len(got.Contacts) {
			t.Fatalf("batchSize %d: %d contacts, Read saw %d", batchSize, len(contacts), len(got.Contacts))
		}
		for i := range contacts {
			if contacts[i] != got.Contacts[i] {
				t.Fatalf("batchSize %d: contact %d = %+v, Read saw %+v",
					batchSize, i, contacts[i], got.Contacts[i])
			}
		}
	}
}

// TestStreamHeaderAtEOF checks the header callback still fires for an
// input with no contact lines at all.
func TestStreamHeaderAtEOF(t *testing.T) {
	in := "# trace empty\n# nodes 3\n"
	fired := false
	err := Stream(strings.NewReader(in), 0, func(h Header) error {
		fired = true
		if h.Name != "empty" || h.Nodes != 3 {
			t.Fatalf("header = %+v", h)
		}
		return nil
	}, func([]Contact) error {
		t.Fatal("emit fired for body-less input")
		return nil
	})
	if err != nil || !fired {
		t.Fatalf("err=%v fired=%v", err, fired)
	}
}

// TestStreamErrorAttribution checks that malformed inputs fail under
// Stream with the same error text as Read — the property that lets the
// two ingestion paths share documentation and tooling.
func TestStreamErrorAttribution(t *testing.T) {
	cases := []string{
		"# granularity\n0 1 2 3\n",
		"# granularity nope\n",
		"# granularity NaN\n",
		"# window 1\n",
		"# window a b\n",
		"# nodes -1\n",
		"# nodes x\n",
		"# external 1 q\n",
		"# nodes 4\n# external 9\n",
		"0 1 2\n",
		"0 1 2 3 4\n",
		"a 1 2 3\n",
		"0 1 2 Inf\n",
		"0 1 5 2\n",
	}
	for _, in := range cases {
		_, readErr := Read(strings.NewReader(in))
		streamErr := Stream(strings.NewReader(in), 0, nil, nil)
		if readErr == nil || streamErr == nil {
			t.Fatalf("input %q: readErr=%v streamErr=%v", in, readErr, streamErr)
		}
		if readErr.Error() != streamErr.Error() {
			t.Fatalf("input %q:\n  Read:   %v\n  Stream: %v", in, readErr, streamErr)
		}
	}
}

// TestStreamRejectsLateHeader pins the documented divergence from Read:
// a header after the first contact is an error, because a streaming
// consumer has already acted on the header by then.
func TestStreamRejectsLateHeader(t *testing.T) {
	in := "# nodes 4\n0 1 2 3\n# nodes 8\n"
	err := Stream(strings.NewReader(in), 0, nil, nil)
	if err == nil || !strings.Contains(err.Error(), `header "nodes" after first contact`) {
		t.Fatalf("err = %v", err)
	}
}

// TestStreamValidatesPerLine checks the line-attributed versions of the
// checks Read defers to Trace.Validate.
func TestStreamValidatesPerLine(t *testing.T) {
	if err := Stream(strings.NewReader("# nodes 2\n0 5 1 2\n"), 0, nil, nil); err == nil ||
		!strings.Contains(err.Error(), "line 2: contact references device out of range (0, 5, n=2)") {
		t.Fatalf("range err = %v", err)
	}
	if err := Stream(strings.NewReader("3 3 1 2\n"), 0, nil, nil); err == nil ||
		!strings.Contains(err.Error(), "line 1: self-contact on device 3") {
		t.Fatalf("self-contact err = %v", err)
	}
	// Without a nodes header the range check cannot run; the line must
	// be accepted and the header report Nodes == -1.
	var h Header
	if err := Stream(strings.NewReader("0 999 1 2\n"), 0,
		func(hd Header) error { h = hd; return nil }, nil); err != nil {
		t.Fatal(err)
	}
	if h.Nodes != -1 {
		t.Fatalf("Nodes = %d, want -1", h.Nodes)
	}
}

// TestStreamCallbackErrorsPropagate checks both callbacks can abort the
// stream and their error comes back unwrapped.
func TestStreamCallbackErrorsPropagate(t *testing.T) {
	in := "# nodes 3\n0 1 2 3\n1 2 4 5\n"
	sentinel := errors.New("stop")
	if err := Stream(strings.NewReader(in), 0,
		func(Header) error { return sentinel }, nil); err != sentinel {
		t.Fatalf("header abort: %v", err)
	}
	calls := 0
	if err := Stream(strings.NewReader(in), 1, nil,
		func([]Contact) error { calls++; return sentinel }); err != sentinel || calls != 1 {
		t.Fatalf("emit abort: err=%v calls=%d", err, calls)
	}
}

// TestParseContactLine spot-checks the exported parser used by network
// feeds.
func TestParseContactLine(t *testing.T) {
	c, err := ParseContactLine(9, "  3 7 1.5 2.5 ")
	if err != nil || c != (Contact{A: 3, B: 7, Beg: 1.5, End: 2.5}) {
		t.Fatalf("c=%+v err=%v", c, err)
	}
	if _, err := ParseContactLine(9, "3 7 x 2.5"); err == nil ||
		!strings.Contains(err.Error(), "line 9") {
		t.Fatalf("err = %v", err)
	}
}
