// Package trace defines the contact-trace representation shared by the
// whole repository: a temporal network given as a static set of devices
// and a multiset of contacts (u, v, [t_beg, t_end]), exactly the model of
// §4.2 of the paper ("an edge from device u to device v, with label
// [t_beg; t_end], represents a contact").
//
// The package also provides the simple trace-level statistics the paper
// reports — contact durations (Figure 7) and rate of contact (Table 1) —
// plus the contact-removal operations of §6. Statistics that need the
// per-pair meeting index (inter-contact times, the next-contact step
// function of Figure 6, pair normalization) live in package timeline,
// which indexes a trace once and shares the index across all consumers.
package trace

import (
	"fmt"
	"math"
	"sort"

	"opportunet/internal/rng"
)

// NodeID identifies a device. Devices are numbered densely from 0.
type NodeID int32

// Kind distinguishes experimental devices from external Bluetooth devices
// observed opportunistically (§5.1). External devices take part in paths
// but their mutual contacts are not observed by the experiment.
type Kind uint8

// Device kinds.
const (
	Internal Kind = iota
	External
)

// Contact is a single observed contact: devices A and B are in range
// during [Beg, End] (seconds). Contacts are undirected: either device can
// transfer data to the other while the contact lasts. End == Beg encodes
// an instantaneous contact.
type Contact struct {
	A, B     NodeID
	Beg, End float64
}

// Duration returns the contact length in seconds.
func (c Contact) Duration() float64 { return c.End - c.Beg }

// Trace is a temporal network observed over the window [Start, End].
type Trace struct {
	// Name labels the data set (e.g. "infocom05").
	Name string
	// Granularity is the scan period in seconds; 0 if contacts were
	// observed continuously.
	Granularity float64
	// Start and End delimit the observation window in seconds.
	Start, End float64
	// Kinds gives the kind of every device; its length is the number of
	// devices.
	Kinds []Kind
	// Contacts holds every recorded contact, in no particular order
	// unless SortByBeg was called.
	Contacts []Contact
}

// NumNodes returns the number of devices in the trace.
func (t *Trace) NumNodes() int { return len(t.Kinds) }

// NumInternal returns the number of experimental (internal) devices.
func (t *Trace) NumInternal() int {
	n := 0
	for _, k := range t.Kinds {
		if k == Internal {
			n++
		}
	}
	return n
}

// InternalNodes returns the IDs of all internal devices in increasing
// order.
func (t *Trace) InternalNodes() []NodeID {
	var out []NodeID
	for id, k := range t.Kinds {
		if k == Internal {
			out = append(out, NodeID(id))
		}
	}
	return out
}

// Duration returns the length of the observation window in seconds.
func (t *Trace) Duration() float64 { return t.End - t.Start }

// Validate checks structural invariants: window sanity, device IDs in
// range, no self-contacts, and non-negative contact durations. It returns
// the first violation found.
func (t *Trace) Validate() error {
	if t.End < t.Start {
		return fmt.Errorf("trace %q: window end %v before start %v", t.Name, t.End, t.Start)
	}
	n := NodeID(len(t.Kinds))
	for i, c := range t.Contacts {
		if c.A < 0 || c.A >= n || c.B < 0 || c.B >= n {
			return fmt.Errorf("trace %q: contact %d references device out of range (%d, %d, n=%d)", t.Name, i, c.A, c.B, n)
		}
		if c.A == c.B {
			return fmt.Errorf("trace %q: contact %d is a self-contact on device %d", t.Name, i, c.A)
		}
		if c.End < c.Beg {
			return fmt.Errorf("trace %q: contact %d has negative duration [%v, %v]", t.Name, i, c.Beg, c.End)
		}
		if math.IsNaN(c.Beg) || math.IsNaN(c.End) || math.IsInf(c.Beg, 0) || math.IsInf(c.End, 0) {
			return fmt.Errorf("trace %q: contact %d has non-finite times", t.Name, i)
		}
	}
	return nil
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	cp := *t
	cp.Kinds = append([]Kind(nil), t.Kinds...)
	cp.Contacts = append([]Contact(nil), t.Contacts...)
	return &cp
}

// SortByBeg orders contacts by begin time (ties by end time, then IDs),
// the canonical order used by the path engine and the statistics below.
func (t *Trace) SortByBeg() {
	sort.Slice(t.Contacts, func(i, j int) bool {
		a, b := t.Contacts[i], t.Contacts[j]
		if a.Beg != b.Beg {
			return a.Beg < b.Beg
		}
		if a.End != b.End {
			return a.End < b.End
		}
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
}

// filter returns a copy of t whose contacts satisfy keep. Metadata and
// device set are preserved.
func (t *Trace) filter(keep func(Contact) bool) *Trace {
	cp := *t
	cp.Kinds = append([]Kind(nil), t.Kinds...)
	cp.Contacts = nil
	for _, c := range t.Contacts {
		if keep(c) {
			cp.Contacts = append(cp.Contacts, c)
		}
	}
	return &cp
}

// InternalOnly returns a copy containing only contacts between internal
// devices (the default view used in §5 for the conference data sets).
func (t *Trace) InternalOnly() *Trace {
	return t.filter(func(c Contact) bool {
		return t.Kinds[c.A] == Internal && t.Kinds[c.B] == Internal
	})
}

// TimeWindow returns a copy restricted to [a, b]; contacts are clipped to
// the window and the trace window is set to [a, b]. Used e.g. to extract
// the second day of Infocom06 for §6.
//
// Boundary semantics: a positive-length contact is kept iff it overlaps
// the window for a positive duration — a contact merely touching a
// boundary (End == a or Beg == b) is dropped, because clipping would
// leave a zero-length artifact that the rest of the system would
// misread as an instantaneous contact. Genuinely instantaneous contacts
// (Beg == End) are kept whenever they lie inside the closed window.
func (t *Trace) TimeWindow(a, b float64) *Trace {
	cp := *t
	cp.Kinds = append([]Kind(nil), t.Kinds...)
	cp.Start, cp.End = a, b
	cp.Contacts = nil
	for _, c := range t.Contacts {
		if c.Beg == c.End {
			if c.Beg < a || c.Beg > b {
				continue
			}
		} else if math.Min(c.End, b) <= math.Max(c.Beg, a) {
			continue
		}
		if c.Beg < a {
			c.Beg = a
		}
		if c.End > b {
			c.End = b
		}
		cp.Contacts = append(cp.Contacts, c)
	}
	return &cp
}

// MinDuration returns a copy keeping only contacts lasting at least d
// seconds: the duration-threshold removal of §6.2.
func (t *Trace) MinDuration(d float64) *Trace {
	return t.filter(func(c Contact) bool { return c.Duration() >= d })
}

// RemoveRandom returns a copy in which each contact was removed
// independently with probability p: the random contact removal of §6.1.
func (t *Trace) RemoveRandom(p float64, r *rng.Source) *Trace {
	return t.filter(func(Contact) bool { return !r.Bool(p) })
}

// Durations returns the duration of every contact, in seconds.
func (t *Trace) Durations() []float64 {
	out := make([]float64, len(t.Contacts))
	for i, c := range t.Contacts {
		out[i] = c.Duration()
	}
	return out
}

// ContactsPerNode returns the number of contacts each device takes part
// in.
func (t *Trace) ContactsPerNode() []int {
	out := make([]int, t.NumNodes())
	for _, c := range t.Contacts {
		out[c.A]++
		out[c.B]++
	}
	return out
}

// RateOfContact returns the average number of contacts made by an
// internal device per day, the "rate of contact" of Table 1. Each contact
// counts once for each internal endpoint. It returns 0 for an empty
// window or a trace without internal devices.
func (t *Trace) RateOfContact() float64 {
	days := t.Duration() / 86400
	ni := t.NumInternal()
	if days <= 0 || ni == 0 {
		return 0
	}
	events := 0
	for _, c := range t.Contacts {
		if t.Kinds[c.A] == Internal {
			events++
		}
		if t.Kinds[c.B] == Internal {
			events++
		}
	}
	return float64(events) / float64(ni) / days
}

// Compact renumbers devices densely, dropping devices that take part in
// no contact. It returns the compacted trace and the mapping from new to
// old IDs. Filtering operations (InternalOnly, contact removal) can
// leave many silent devices; compacting shrinks per-pair state in
// downstream analyses.
func (t *Trace) Compact() (*Trace, []NodeID) {
	used := make([]bool, t.NumNodes())
	for _, c := range t.Contacts {
		used[c.A] = true
		used[c.B] = true
	}
	newID := make([]NodeID, t.NumNodes())
	var oldID []NodeID
	for id, u := range used {
		if !u {
			newID[id] = -1
			continue
		}
		newID[id] = NodeID(len(oldID))
		oldID = append(oldID, NodeID(id))
	}
	cp := *t
	cp.Kinds = make([]Kind, len(oldID))
	for n, o := range oldID {
		cp.Kinds[n] = t.Kinds[o]
	}
	cp.Contacts = make([]Contact, len(t.Contacts))
	for i, c := range t.Contacts {
		c.A, c.B = newID[c.A], newID[c.B]
		cp.Contacts[i] = c
	}
	return &cp, oldID
}

// HourlyContactCounts buckets contact begin times by hour since the
// trace start, returning one count per hour of the window (the last
// bucket may be partial). It exposes the diurnal rhythm the activity
// profiles generate and Figure 6 visualizes.
func (t *Trace) HourlyContactCounts() []int {
	hours := int(math.Ceil(t.Duration() / 3600))
	if hours <= 0 {
		return nil
	}
	out := make([]int, hours)
	for _, c := range t.Contacts {
		h := int((c.Beg - t.Start) / 3600)
		if h >= 0 && h < hours {
			out[h]++
		}
	}
	return out
}

// PeakToTroughRatio summarizes the diurnal contrast: the ratio between
// the busiest and the median non-zero hourly contact count (+Inf when
// more than half the hours are silent but some activity exists, 0 for an
// empty trace).
func (t *Trace) PeakToTroughRatio() float64 {
	counts := t.HourlyContactCounts()
	if len(counts) == 0 {
		return 0
	}
	peak := 0
	vals := make([]float64, len(counts))
	for i, c := range counts {
		vals[i] = float64(c)
		if c > peak {
			peak = c
		}
	}
	if peak == 0 {
		return 0
	}
	med := medianOf(vals)
	if med == 0 {
		return math.Inf(1)
	}
	return float64(peak) / med
}

// medianOf returns the median of xs without modifying it.
func medianOf(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n == 0 {
		return math.NaN()
	}
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}
