package trace

import (
	"math"
	"testing"

	"opportunet/internal/rng"
)

// tiny builds a 4-node trace used across tests.
func tiny() *Trace {
	return &Trace{
		Name:        "tiny",
		Granularity: 10,
		Start:       0,
		End:         1000,
		Kinds:       []Kind{Internal, Internal, Internal, External},
		Contacts: []Contact{
			{A: 0, B: 1, Beg: 100, End: 200},
			{A: 1, B: 2, Beg: 150, End: 160},
			{A: 0, B: 2, Beg: 500, End: 800},
			{A: 2, B: 3, Beg: 900, End: 950},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := tiny().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Trace)
	}{
		{"out of range", func(tr *Trace) { tr.Contacts[0].B = 99 }},
		{"negative id", func(tr *Trace) { tr.Contacts[0].A = -1 }},
		{"self contact", func(tr *Trace) { tr.Contacts[0].B = tr.Contacts[0].A }},
		{"negative duration", func(tr *Trace) { tr.Contacts[0].End = tr.Contacts[0].Beg - 1 }},
		{"NaN time", func(tr *Trace) { tr.Contacts[0].Beg = math.NaN() }},
		{"inverted window", func(tr *Trace) { tr.End = tr.Start - 1 }},
	}
	for _, c := range cases {
		tr := tiny()
		c.mut(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid trace", c.name)
		}
	}
}

func TestCounts(t *testing.T) {
	tr := tiny()
	if tr.NumNodes() != 4 {
		t.Errorf("NumNodes = %d", tr.NumNodes())
	}
	if tr.NumInternal() != 3 {
		t.Errorf("NumInternal = %d", tr.NumInternal())
	}
	in := tr.InternalNodes()
	if len(in) != 3 || in[0] != 0 || in[2] != 2 {
		t.Errorf("InternalNodes = %v", in)
	}
	if tr.Duration() != 1000 {
		t.Errorf("Duration = %v", tr.Duration())
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := tiny()
	cp := tr.Clone()
	cp.Contacts[0].Beg = -42
	cp.Kinds[0] = External
	if tr.Contacts[0].Beg == -42 || tr.Kinds[0] == External {
		t.Fatal("Clone shares storage with original")
	}
}

func TestInternalOnly(t *testing.T) {
	got := tiny().InternalOnly()
	if len(got.Contacts) != 3 {
		t.Fatalf("InternalOnly kept %d contacts, want 3", len(got.Contacts))
	}
	for _, c := range got.Contacts {
		if got.Kinds[c.A] != Internal || got.Kinds[c.B] != Internal {
			t.Fatal("InternalOnly kept a contact touching an external device")
		}
	}
}

func TestTimeWindowClips(t *testing.T) {
	got := tiny().TimeWindow(150, 600)
	if got.Start != 150 || got.End != 600 {
		t.Fatalf("window [%v, %v]", got.Start, got.End)
	}
	// Contacts: [100,200]→[150,200], [150,160] kept, [500,800]→[500,600],
	// [900,950] dropped.
	if len(got.Contacts) != 3 {
		t.Fatalf("kept %d contacts, want 3", len(got.Contacts))
	}
	for _, c := range got.Contacts {
		if c.Beg < 150 || c.End > 600 {
			t.Fatalf("contact not clipped: %+v", c)
		}
	}
}

func TestTimeWindowBoundaries(t *testing.T) {
	tr := &Trace{
		Start: 0, End: 1000, Kinds: make([]Kind, 2),
		Contacts: []Contact{
			{A: 0, B: 1, Beg: 0, End: 100},    // ends exactly at window start
			{A: 0, B: 1, Beg: 100, End: 100},  // instantaneous at window start
			{A: 0, B: 1, Beg: 150, End: 150},  // instantaneous inside
			{A: 0, B: 1, Beg: 300, End: 300},  // instantaneous at window end
			{A: 0, B: 1, Beg: 300, End: 400},  // begins exactly at window end
			{A: 0, B: 1, Beg: 500, End: 500},  // instantaneous outside
			{A: 0, B: 1, Beg: 90, End: 110},   // straddles window start
		},
	}
	got := tr.TimeWindow(100, 300)
	// A positive-length contact survives only with positive overlap, so
	// the two contacts merely touching the boundary are dropped; the
	// instantaneous contacts at 100, 150 and 300 are all inside the
	// closed window and survive unclipped.
	want := []Contact{
		{A: 0, B: 1, Beg: 100, End: 100},
		{A: 0, B: 1, Beg: 150, End: 150},
		{A: 0, B: 1, Beg: 300, End: 300},
		{A: 0, B: 1, Beg: 100, End: 110}, // straddler, clipped
	}
	if len(got.Contacts) != len(want) {
		t.Fatalf("kept %d contacts, want %d: %+v", len(got.Contacts), len(want), got.Contacts)
	}
	for i, w := range want {
		if got.Contacts[i] != w {
			t.Fatalf("contact %d = %+v, want %+v", i, got.Contacts[i], w)
		}
	}
	// A window touching only instantaneous contacts keeps exactly them.
	pt := tr.TimeWindow(150, 150)
	if len(pt.Contacts) != 1 || pt.Contacts[0].Beg != 150 {
		t.Fatalf("degenerate window kept %+v", pt.Contacts)
	}
}

func TestMinDuration(t *testing.T) {
	got := tiny().MinDuration(50)
	// Durations are 100, 10, 300, 50; threshold >= 50 keeps three.
	if len(got.Contacts) != 3 {
		t.Fatalf("kept %d contacts, want 3", len(got.Contacts))
	}
}

func TestRemoveRandomExtremes(t *testing.T) {
	tr := tiny()
	r := rng.New(1)
	if got := tr.RemoveRandom(0, r); len(got.Contacts) != len(tr.Contacts) {
		t.Fatal("RemoveRandom(0) dropped contacts")
	}
	if got := tr.RemoveRandom(1, r); len(got.Contacts) != 0 {
		t.Fatal("RemoveRandom(1) kept contacts")
	}
}

func TestRemoveRandomFraction(t *testing.T) {
	tr := &Trace{Start: 0, End: 1, Kinds: make([]Kind, 2)}
	for i := 0; i < 10000; i++ {
		tr.Contacts = append(tr.Contacts, Contact{A: 0, B: 1, Beg: float64(i), End: float64(i)})
	}
	got := tr.RemoveRandom(0.9, rng.New(2))
	frac := float64(len(got.Contacts)) / 10000
	if math.Abs(frac-0.1) > 0.02 {
		t.Fatalf("RemoveRandom(0.9) kept fraction %v, want ~0.1", frac)
	}
}

func TestDurationsAndRate(t *testing.T) {
	tr := tiny()
	d := tr.Durations()
	if len(d) != 4 || d[0] != 100 || d[2] != 300 {
		t.Fatalf("Durations = %v", d)
	}
	// Window is 1000 s. Internal endpoints: contacts 1,2,3 have 2 each,
	// contact 4 (2-3) has 1 internal endpoint → 7 events over 3 devices.
	days := 1000.0 / 86400
	want := 7.0 / 3 / days
	if got := tr.RateOfContact(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("RateOfContact = %v, want %v", got, want)
	}
}

func TestRateOfContactDegenerate(t *testing.T) {
	tr := &Trace{Start: 0, End: 0, Kinds: []Kind{Internal}}
	if tr.RateOfContact() != 0 {
		t.Fatal("zero-length window should give rate 0")
	}
	tr2 := &Trace{Start: 0, End: 10, Kinds: []Kind{External, External}}
	if tr2.RateOfContact() != 0 {
		t.Fatal("no internal devices should give rate 0")
	}
}

func TestContactsPerNode(t *testing.T) {
	got := tiny().ContactsPerNode()
	want := []int{2, 2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ContactsPerNode = %v, want %v", got, want)
		}
	}
}

func TestSortByBeg(t *testing.T) {
	tr := tiny()
	tr.Contacts[0], tr.Contacts[2] = tr.Contacts[2], tr.Contacts[0]
	tr.SortByBeg()
	for i := 1; i < len(tr.Contacts); i++ {
		if tr.Contacts[i].Beg < tr.Contacts[i-1].Beg {
			t.Fatal("not sorted by Beg")
		}
	}
}

func TestHourlyContactCounts(t *testing.T) {
	tr := &Trace{
		Start: 0, End: 3 * 3600, Kinds: make([]Kind, 2),
		Contacts: []Contact{
			{A: 0, B: 1, Beg: 100, End: 200},
			{A: 0, B: 1, Beg: 3599, End: 3700},
			{A: 0, B: 1, Beg: 3601, End: 3700},
			{A: 0, B: 1, Beg: 2 * 3600, End: 2*3600 + 10},
		},
	}
	got := tr.HourlyContactCounts()
	want := []int{2, 1, 1}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("HourlyContactCounts = %v, want %v", got, want)
		}
	}
	empty := &Trace{Start: 5, End: 5, Kinds: make([]Kind, 2)}
	if empty.HourlyContactCounts() != nil {
		t.Fatal("empty window should give nil")
	}
}

func TestPeakToTroughRatio(t *testing.T) {
	// 4 hours: counts 10, 2, 2, 0 -> peak 10, median of {10,2,2,0} = 2.
	tr := &Trace{Start: 0, End: 4 * 3600, Kinds: make([]Kind, 2)}
	add := func(hour, n int) {
		for i := 0; i < n; i++ {
			beg := float64(hour)*3600 + float64(i)
			tr.Contacts = append(tr.Contacts, Contact{A: 0, B: 1, Beg: beg, End: beg + 1})
		}
	}
	add(0, 10)
	add(1, 2)
	add(2, 2)
	if got := tr.PeakToTroughRatio(); got != 5 {
		t.Fatalf("PeakToTroughRatio = %v, want 5", got)
	}
	silent := &Trace{Start: 0, End: 3600, Kinds: make([]Kind, 2)}
	if silent.PeakToTroughRatio() != 0 {
		t.Fatal("silent trace should give 0")
	}
	// Mostly-silent trace with one busy hour: median 0 -> +Inf.
	spiky := &Trace{Start: 0, End: 10 * 3600, Kinds: make([]Kind, 2)}
	spiky.Contacts = []Contact{{A: 0, B: 1, Beg: 10, End: 20}}
	if !math.IsInf(spiky.PeakToTroughRatio(), 1) {
		t.Fatal("spiky trace should give +Inf")
	}
}

func TestGeneratedTraceHasDiurnalContrast(t *testing.T) {
	// Integration: tracegen cannot be imported here (cycle), so build a
	// simple two-phase trace and verify the statistic reacts.
	tr := &Trace{Start: 0, End: 48 * 3600, Kinds: make([]Kind, 2)}
	for h := 0; h < 48; h++ {
		n := 1
		if h%24 >= 9 && h%24 < 18 {
			n = 20
		}
		for i := 0; i < n; i++ {
			beg := float64(h)*3600 + float64(i*10)
			tr.Contacts = append(tr.Contacts, Contact{A: 0, B: 1, Beg: beg, End: beg + 5})
		}
	}
	if r := tr.PeakToTroughRatio(); r < 5 {
		t.Fatalf("day/night trace ratio %v, want >= 5", r)
	}
}

func TestCompact(t *testing.T) {
	tr := &Trace{
		Start: 0, End: 100,
		Kinds: []Kind{Internal, External, Internal, Internal, External},
		Contacts: []Contact{
			{A: 4, B: 0, Beg: 0, End: 1},
			{A: 2, B: 4, Beg: 5, End: 6},
		},
	}
	cp, oldID := tr.Compact()
	if cp.NumNodes() != 3 {
		t.Fatalf("compacted to %d devices, want 3", cp.NumNodes())
	}
	if err := cp.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mapping covers devices 0, 2, 4 in order.
	want := []NodeID{0, 2, 4}
	for i := range want {
		if oldID[i] != want[i] {
			t.Fatalf("oldID = %v, want %v", oldID, want)
		}
	}
	// Kinds follow the mapping: old 4 was External.
	if cp.Kinds[0] != Internal || cp.Kinds[2] != External {
		t.Fatalf("kinds %v", cp.Kinds)
	}
	// Contacts renumbered: (4,0) -> (2,0).
	if cp.Contacts[0].A != 2 || cp.Contacts[0].B != 0 {
		t.Fatalf("contact 0 = %+v", cp.Contacts[0])
	}
	// Original untouched.
	if tr.Contacts[0].A != 4 {
		t.Fatal("Compact modified the original")
	}
}

func TestCompactEmptyTrace(t *testing.T) {
	tr := &Trace{Start: 0, End: 10, Kinds: make([]Kind, 5)}
	cp, oldID := tr.Compact()
	if cp.NumNodes() != 0 || len(oldID) != 0 {
		t.Fatalf("empty trace should compact to nothing, got %d devices", cp.NumNodes())
	}
}
