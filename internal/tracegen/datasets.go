package tracegen

import "opportunet/internal/trace"

// The four data sets of Table 1, reconstructed. Counts and durations
// follow the paper (device counts, scan granularity, contact volumes);
// community structure, sociability spread and tail shapes are chosen to
// reproduce the qualitative behaviour the paper reports: contact-duration
// mix of Figure 7, disconnection patterns of Figure 6, and diameters of
// Figure 9 (Infocom05 ≈ 5, Reality Mining ≈ 4, Hong-Kong ≈ 6 at 99%).

// Infocom05Config reproduces the Infocom05 experiment: 41 iMotes carried
// by conference students for 3 days, scanning every 120 s, 22,459
// internal contacts, plus 223 external devices (1,173 contacts).
func Infocom05Config() Config {
	return Config{
		Name:                  "infocom05",
		Devices:               41,
		DurationDays:          3,
		Granularity:           120,
		Profile:               ConferenceProfile(),
		StartHour:             8, // trace opens Monday 08:00
		TargetContacts:        22459,
		Groups:                6,
		InGroupBoost:          4,
		SociabilitySigma:      0.5,
		GapAlpha:              1.1,
		GapMaxFactor:          2000,
		DurShortFrac:          0.9,
		DurAlpha:              1.1,
		DurMax:                4 * 3600,
		GatheringFrac:         0.8,
		GatheringSize:         7,
		GatheringWindow:       1800,
		GatheringPairContacts: 2,
		GatheringMix:          0.15,
		GatheringMixedFrac:    0.35,
		GatheringSeatedFrac:   0.65,
		ExternalDevices:       223,
		ExternalContacts:      1173,
	}
}

// Infocom06Config reproduces the Infocom06 experiment: 78 participants
// over 4 days, 120 s scans, 182,951 internal contacts — the densest of
// the four data sets — plus a large external population.
func Infocom06Config() Config {
	return Config{
		Name:                  "infocom06",
		Devices:               78,
		DurationDays:          4,
		Granularity:           120,
		Profile:               ConferenceProfile(),
		StartHour:             8,
		TargetContacts:        182951,
		Groups:                8,
		InGroupBoost:          4,
		SociabilitySigma:      0.5,
		GapAlpha:              1.1,
		GapMaxFactor:          2000,
		DurShortFrac:          0.9,
		DurAlpha:              1.1,
		DurMax:                4 * 3600,
		GatheringFrac:         0.8,
		GatheringSize:         7,
		GatheringWindow:       1800,
		GatheringPairContacts: 2,
		GatheringMix:          0.15,
		GatheringMixedFrac:    0.35,
		GatheringSeatedFrac:   0.65,
		ExternalDevices:       4519,
		ExternalContacts:      63630,
	}
}

// HongKongConfig reproduces the Hong-Kong experiment: 37 devices given to
// people chosen in a bar specifically to avoid social relationships
// between them, over a week; internal contacts are rare (hundreds) and
// most connectivity flows through 868 external devices met around town
// (2,507 contacts).
func HongKongConfig() Config {
	return Config{
		Name:                  "hongkong",
		Devices:               37,
		DurationDays:          7,
		Granularity:           120,
		Profile:               CityProfile(),
		StartHour:             17, // handed out in a bar, Monday evening
		TargetContacts:        568,
		Groups:                1, // no social structure by design
		InGroupBoost:          1,
		SociabilitySigma:      0.6,
		GapAlpha:              0.9,
		GapMaxFactor:          5000,
		DurShortFrac:          0.85,
		DurAlpha:              1.0,
		DurMax:                2 * 3600,
		GatheringFrac:         0.2,
		GatheringSize:         3,
		GatheringWindow:       1800,
		GatheringPairContacts: 1.5,
		GatheringMix:          0.9,
		GatheringMixedFrac:    0.5,
		GatheringSeatedFrac:   0.35,
		ExternalDevices:       868,
		ExternalContacts:      2507,
	}
}

// RealityMiningConfig reproduces the MIT Reality Mining Bluetooth data
// set: roughly 100 phones over 9 months, scanning every 300 s, 114,667
// contacts, strong working-group structure and weekday rhythm.
//
// Generating and analyzing 9 months is the paper-scale run; callers that
// need CI-scale runs should use RealityMiningScaled.
func RealityMiningConfig() Config {
	return Config{
		Name:                  "realitymining",
		Devices:               97,
		DurationDays:          246,
		Granularity:           300,
		Profile:               CampusProfile(),
		StartHour:             0,
		TargetContacts:        114667,
		Groups:                8,
		InGroupBoost:          10,
		SociabilitySigma:      0.8,
		GapAlpha:              0.9,
		GapMaxFactor:          8000,
		DurShortFrac:          0.85,
		DurAlpha:              1.0,
		DurMax:                8 * 3600,
		GatheringFrac:         0.8,
		GatheringSize:         5,
		GatheringWindow:       3600,
		GatheringPairContacts: 2,
		GatheringMix:          0.05,
		GatheringMixedFrac:    0.15,
		GatheringSeatedFrac:   0.65,
	}
}

// RealityMiningScaled returns the Reality Mining configuration compressed
// to the given number of days with proportionally fewer contacts, for
// quick runs. days must be positive.
func RealityMiningScaled(days float64) Config {
	cfg := RealityMiningConfig()
	frac := days / cfg.DurationDays
	cfg.DurationDays = days
	cfg.TargetContacts = int(float64(cfg.TargetContacts) * frac)
	cfg.Name = "realitymining-scaled"
	return cfg
}

// Infocom05 generates the Infocom05-like data set.
func Infocom05(seed uint64) (*trace.Trace, error) { return Generate(Infocom05Config(), seed) }

// Infocom06 generates the Infocom06-like data set.
func Infocom06(seed uint64) (*trace.Trace, error) { return Generate(Infocom06Config(), seed) }

// HongKong generates the Hong-Kong-like data set.
func HongKong(seed uint64) (*trace.Trace, error) { return Generate(HongKongConfig(), seed) }

// RealityMining generates the Reality-Mining-like data set at full paper
// scale (9 months).
func RealityMining(seed uint64) (*trace.Trace, error) { return Generate(RealityMiningConfig(), seed) }
