package tracegen

import (
	"fmt"
	"math"

	"opportunet/internal/rng"
	"opportunet/internal/trace"
)

// Config describes one synthetic data set. The default configurations in
// datasets.go are calibrated to the paper's Table 1; Generate accepts any
// combination for parameter studies.
type Config struct {
	// Name labels the trace.
	Name string
	// Devices is the number of internal (experimental) devices.
	Devices int
	// DurationDays is the observation window length.
	DurationDays float64
	// Granularity is the Bluetooth scan period in seconds.
	Granularity float64
	// Profile is the weekly activity profile; nil means flat.
	Profile *Profile
	// StartHour is the hour of the week (0 = Monday 00:00) at which the
	// trace window opens, anchoring the diurnal pattern.
	StartHour float64
	// TargetContacts is the expected number of observed internal
	// contacts.
	TargetContacts int
	// Groups is the number of communities devices are split into; pairs
	// within a community meet InGroupBoost times more often.
	Groups int
	// InGroupBoost multiplies the meeting rate of same-community pairs
	// (>= 1; 1 disables community structure).
	InGroupBoost float64
	// SociabilitySigma is the log-normal σ of per-device sociability
	// (0 = homogeneous devices).
	SociabilitySigma float64
	// GapAlpha is the Pareto shape of inter-contact gaps in activity
	// time (heavier tail for smaller values; measured human traces show
	// shapes near 1).
	GapAlpha float64
	// GapMaxFactor is the ratio between the truncation point and the
	// minimum of the gap distribution (the exponential-cutoff time scale
	// relative to the shortest gaps).
	GapMaxFactor float64
	// DurShortFrac is the fraction of true contact durations shorter
	// than one scan period (observed as a single slot when caught).
	DurShortFrac float64
	// DurAlpha is the Pareto shape of the long-duration tail.
	DurAlpha float64
	// DurMax caps contact durations, in seconds.
	DurMax float64
	// External, when non-zero, adds external Bluetooth devices seen
	// opportunistically: ExternalDevices devices totalling
	// ExternalContacts observed contacts with internal devices.
	ExternalDevices  int
	ExternalContacts int
	// RawContacts disables the scanning sampler: true proximity
	// intervals are emitted instead of scan-aligned observations.
	RawContacts bool

	// GatheringFrac routes this fraction of contacts through gatherings:
	// clusters of devices co-located for a while, meeting each other in
	// bursts. Gatherings give the trace the contemporaneous-clique
	// structure of real venues (a session room, a lab), without which
	// pairwise-independent contacts overstate the value of long
	// simultaneous relay chains and inflate the diameter. 0 disables.
	GatheringFrac float64
	// GatheringSize is the mean number of devices per gathering (>= 2
	// when GatheringFrac > 0).
	GatheringSize float64
	// GatheringWindow is the mean gathering length in seconds.
	GatheringWindow float64
	// GatheringPairContacts is the mean number of contacts each
	// co-present pair records during one gathering.
	GatheringPairContacts float64
	// GatheringMix is the probability that a gathering member is drawn
	// from outside the gathering's home community.
	GatheringMix float64
	// GatheringMixedFrac is the fraction of gatherings that are fully
	// mixed (members drawn uniformly from everyone): the coffee-break /
	// lunch crowd that puts members of distant communities one hop
	// apart. The rest are community gatherings (session rooms, labs).
	GatheringMixedFrac float64
	// GatheringSeatedFrac is the probability that a gathering member is
	// "seated": seated members of the same gathering record one long
	// contact per pair (they stay together), everyone else records short
	// passing contacts. Long contacts are therefore transitive — they
	// form cliques, as people sitting around the same table do — instead
	// of accumulating into a random long-contact backbone whose chains
	// would inflate the diameter.
	GatheringSeatedFrac float64
}

func (c *Config) validate() error {
	switch {
	case c.Devices < 2:
		return fmt.Errorf("tracegen: need at least 2 devices, got %d", c.Devices)
	case c.DurationDays <= 0:
		return fmt.Errorf("tracegen: non-positive duration %v", c.DurationDays)
	case c.Granularity <= 0 && !c.RawContacts:
		return fmt.Errorf("tracegen: non-positive granularity %v", c.Granularity)
	case c.TargetContacts < 0 || c.ExternalContacts < 0 || c.ExternalDevices < 0:
		return fmt.Errorf("tracegen: negative counts")
	case c.Groups < 1:
		return fmt.Errorf("tracegen: need at least one group")
	case c.InGroupBoost < 1:
		return fmt.Errorf("tracegen: InGroupBoost must be >= 1")
	case c.GapAlpha <= 0 || c.GapMaxFactor <= 1:
		return fmt.Errorf("tracegen: invalid gap distribution (alpha=%v, maxFactor=%v)", c.GapAlpha, c.GapMaxFactor)
	case c.DurShortFrac < 0 || c.DurShortFrac > 1:
		return fmt.Errorf("tracegen: DurShortFrac %v outside [0,1]", c.DurShortFrac)
	case c.DurAlpha <= 0 || c.DurMax <= 0:
		return fmt.Errorf("tracegen: invalid duration distribution")
	case c.GatheringFrac < 0 || c.GatheringFrac > 1:
		return fmt.Errorf("tracegen: GatheringFrac %v outside [0,1]", c.GatheringFrac)
	case c.GatheringFrac > 0 && (c.GatheringSize < 2 || c.GatheringWindow <= 0 || c.GatheringPairContacts <= 0):
		return fmt.Errorf("tracegen: gatherings enabled with invalid parameters")
	case c.GatheringMix < 0 || c.GatheringMix > 1:
		return fmt.Errorf("tracegen: GatheringMix %v outside [0,1]", c.GatheringMix)
	case c.GatheringMixedFrac < 0 || c.GatheringMixedFrac > 1:
		return fmt.Errorf("tracegen: GatheringMixedFrac %v outside [0,1]", c.GatheringMixedFrac)
	case c.GatheringSeatedFrac < 0 || c.GatheringSeatedFrac > 1:
		return fmt.Errorf("tracegen: GatheringSeatedFrac %v outside [0,1]", c.GatheringSeatedFrac)
	}
	return nil
}

// paretoTruncMeanUnit returns the mean of ParetoTrunc(alpha, 1, R).
func paretoTruncMeanUnit(alpha, ratio float64) float64 {
	c := 1 - math.Pow(ratio, -alpha)
	if math.Abs(alpha-1) < 1e-9 {
		return math.Log(ratio) / c
	}
	return alpha / (1 - alpha) * (math.Pow(ratio, 1-alpha) - 1) / c
}

// Meta returns the contact-less skeleton trace — name, window, device
// table — that Generate(c, seed) would fill in, available before any
// contact exists: a streaming consumer uses it to emit a trace.Writer
// header (or size a timeline.Appender) up front.
func (c Config) Meta() (*trace.Trace, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	return c.meta(), nil
}

// meta builds the contact-less trace skeleton — name, window, and the
// device table — shared by Generate and GenerateStream (whose consumers
// need it up front to write a header before any contact arrives).
func (c *Config) meta() *trace.Trace {
	tr := &trace.Trace{
		Name:        c.Name,
		Granularity: c.Granularity,
		Start:       0,
		End:         c.DurationDays * 86400,
		Kinds:       make([]trace.Kind, c.Devices+c.ExternalDevices),
	}
	for i := 0; i < c.ExternalDevices; i++ {
		tr.Kinds[c.Devices+i] = trace.External
	}
	return tr
}

// emitter funnels generated contacts to a sink. The sink's first error
// is sticky: once set, contact() stops forwarding and the generation
// loops bail out at their next check, so a failed disk write aborts a
// large generation instead of grinding through it.
type emitter struct {
	cfg  Config
	end  float64 // horizon clamp for observed intervals
	sink func(trace.Contact) error
	err  error
}

// Generate produces one synthetic trace from the configuration and seed.
// The same (config, seed) always yields the identical trace. The whole
// trace is buffered and sorted; use GenerateStream when the contact
// volume should not live in memory.
func Generate(cfg Config, seed uint64) (*trace.Trace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	tr := cfg.meta()
	e := &emitter{cfg: cfg, end: tr.End, sink: func(c trace.Contact) error {
		tr.Contacts = append(tr.Contacts, c)
		return nil
	}}
	if err := generate(cfg, seed, e); err != nil {
		return nil, err
	}
	tr.SortByBeg()
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("tracegen: generated invalid trace: %w", err)
	}
	return tr, nil
}

// GenerateStream generates the same contact set as Generate(cfg, seed)
// while holding at most flushEvery contacts in memory (<= 0 means 4096):
// fn receives successive batches whose backing array is reused between
// calls, so it must copy what it keeps — writing to a trace.Writer or
// appending to a timeline.Appender both do. A fn error aborts the
// generation and is returned as-is.
//
// Contacts arrive in generation order, not time order; the returned
// skeleton trace carries the header (name, window, device table) and no
// contacts. Sorting the streamed contacts with trace.SortByBeg
// reproduces Generate's output exactly.
func GenerateStream(cfg Config, seed uint64, flushEvery int, fn func([]trace.Contact) error) (*trace.Trace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if flushEvery <= 0 {
		flushEvery = 4096
	}
	tr := cfg.meta()
	batch := make([]trace.Contact, 0, flushEvery)
	e := &emitter{cfg: cfg, end: tr.End}
	e.sink = func(c trace.Contact) error {
		batch = append(batch, c)
		if len(batch) >= flushEvery {
			err := fn(batch)
			batch = batch[:0]
			return err
		}
		return nil
	}
	if err := generate(cfg, seed, e); err != nil {
		return nil, err
	}
	if len(batch) > 0 {
		if err := fn(batch); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// generate runs the generation process, emitting every observed contact
// into e. The RNG consumption is independent of the sink, so Generate
// and GenerateStream produce the identical contact sequence.
func generate(cfg Config, seed uint64, e *emitter) error {
	r := rng.New(seed)
	prof := cfg.Profile
	if prof == nil {
		prof = FlatProfile()
	}
	horizon := cfg.DurationDays * 86400
	startAbs := cfg.StartHour * 3600
	warp := func(t float64) float64 { return prof.Warp(startAbs+t) - prof.Warp(startAbs) }
	unwarp := func(s float64) float64 { return prof.Unwarp(prof.Warp(startAbs)+s) - startAbs }
	warpedHorizon := warp(horizon)

	n := cfg.Devices

	// Per-device sociability (log-normal, mean 1) and community.
	soc := make([]float64, n)
	group := make([]int, n)
	for i := range soc {
		soc[i] = math.Exp(cfg.SociabilitySigma*r.Normal() - cfg.SociabilitySigma*cfg.SociabilitySigma/2)
		group[i] = r.Intn(cfg.Groups)
	}

	// Pair weights and their sum.
	weight := func(i, j int) float64 {
		w := soc[i] * soc[j]
		if group[i] == group[j] {
			w *= cfg.InGroupBoost
		}
		return w
	}
	// The sampler misses a fraction of short contacts; inflate raw
	// targets so that the observed count matches TargetContacts. The hit
	// probability of a duration-d contact against a scan period g is
	// min(1, d/g); estimate its mean over the relevant distributions.
	hitRenewal, hitShort := 1.0, 1.0
	if !cfg.RawContacts {
		const probes = 4000
		hr := r.Split()
		sumR, sumS := 0.0, 0.0
		for i := 0; i < probes; i++ {
			sumR += math.Min(1, sampleDuration(cfg, hr)/cfg.Granularity)
			sumS += math.Min(1, shortDuration(cfg, hr)/cfg.Granularity)
		}
		hitRenewal = math.Max(0.05, sumR/probes)
		hitShort = math.Max(0.05, sumS/probes)
	}
	targetGather := float64(cfg.TargetContacts) * cfg.GatheringFrac // observed
	rawRenewal := float64(cfg.TargetContacts) * (1 - cfg.GatheringFrac) / hitRenewal

	// The background process models people moving through the venue or
	// city: each device takes "walks" — renewal events in activity time
	// with heavy-tailed gaps — and each walk is a burst of flash contacts
	// with several nearby devices within a few minutes. Bursting matters
	// beyond realism: a walker is a low-eccentricity hub that links the
	// people around its path two hops apart, whereas independent random
	// pair contacts would create physically impossible direct edges
	// between distant clusters whose chains inflate the diameter.
	const meanBurst = 3.0
	meanUnit := paretoTruncMeanUnit(cfg.GapAlpha, cfg.GapMaxFactor)
	var sumSoc float64
	for _, s := range soc {
		sumSoc += s
	}
	// Cumulative weights for partner choice per walker.
	cum := make([]float64, n)
	pickPartner := func(i int) int {
		run := 0.0
		for j := 0; j < n; j++ {
			if j == i {
				cum[j] = run
				continue
			}
			run += weight(i, j)
			cum[j] = run
		}
		x := r.Uniform(0, run)
		for j := 0; j < n; j++ {
			if j != i && cum[j] >= x {
				return j
			}
		}
		return (i + 1) % n
	}
	for i := 0; i < n; i++ {
		if e.err != nil {
			return e.err
		}
		expectedWalks := rawRenewal / meanBurst * soc[i] / sumSoc
		if expectedWalks <= 0 {
			continue
		}
		meanGap := warpedHorizon / expectedWalks
		gmin := meanGap / meanUnit
		gmax := gmin * cfg.GapMaxFactor
		// Renewal in activity time; the first gap is scaled by a uniform
		// factor to approximate a stationary start.
		s := r.ParetoTrunc(cfg.GapAlpha, gmin, gmax) * r.Float64()
		for s < warpedHorizon {
			walkBeg := unwarp(s)
			for k := 1 + r.Poisson(meanBurst-1); k > 0; k-- {
				j := pickPartner(i)
				beg := walkBeg + r.Uniform(0, 300)
				dur := sampleDuration(cfg, r)
				end := math.Min(beg+dur, horizon)
				e.contact(r, trace.NodeID(i), trace.NodeID(j), beg, end)
			}
			s += r.ParetoTrunc(cfg.GapAlpha, gmin, gmax)
		}
	}

	// Gatherings are membership-disjoint within a window, so peak hours
	// can exhaust the population and under-produce; top-up passes renew
	// the budget until the emitted volume is close to the target (each
	// pass is disjoint within itself, so residual cross-membership stays
	// rare — people occasionally moving rooms mid-window).
	remaining := targetGather
	for pass := 0; pass < 4 && remaining > 0.05*targetGather && e.err == nil; pass++ {
		remaining -= generateGatherings(e, cfg, r, group, warp, horizon, remaining, hitShort)
	}

	// External devices: passers-by seen a handful of times each. Every
	// external contact pairs a uniformly chosen external device with a
	// sociability-weighted internal device at an activity-warped time.
	// Externals never contact each other — the experiment cannot observe
	// those meetings (§5.1).
	if cfg.ExternalDevices > 0 && cfg.ExternalContacts > 0 {
		// Cumulative sociability for weighted internal choice.
		cum := make([]float64, n)
		run := 0.0
		for i := 0; i < n; i++ {
			run += soc[i]
			cum[i] = run
		}
		rawExt := int(math.Round(float64(cfg.ExternalContacts) / hitRenewal))
		for c := 0; c < rawExt && e.err == nil; c++ {
			ext := trace.NodeID(n + r.Intn(cfg.ExternalDevices))
			x := r.Uniform(0, run)
			i := 0
			for cum[i] < x {
				i++
			}
			beg := unwarp(r.Uniform(0, warpedHorizon))
			dur := sampleDuration(cfg, r)
			end := math.Min(beg+dur, horizon)
			e.contact(r, trace.NodeID(i), ext, beg, end)
		}
	}

	return e.err
}

// generateGatherings emits the gathering component: room-structured
// co-location. Time is divided into consecutive session windows of
// length GatheringWindow; during a session each community holds (with an
// activity-dependent rate) gatherings in its own "room", attended by a
// subset of its members plus a few outsiders, while fully-mixed "break"
// gatherings recruit from everyone. Each co-present pair records a
// Poisson number of meetings inside the window. It returns the expected
// number of raw contacts actually emitted (before scan sampling).
//
// Devices attend at most one room per window — you cannot sit in two
// rooms at once — while mixed gatherings (hallway hubs) may overlap room
// membership. GatheringSeatedFrac of the members are seated: each seated
// pair shares one long contact, everyone else records short passing
// contacts. Long contacts therefore come in transitive cliques (tables,
// seat rows), not as an accumulating random backbone; that is what keeps
// the empirical diameter at the paper's 4-6 instead of letting
// contemporaneous chains of accidental long contacts pay off at 8+ hops.
//
// targetObserved and the returned value are in observed (post-sampling)
// contacts; hitShort is the scan-hit probability of a short contact.
func generateGatherings(e *emitter, cfg Config, r *rng.Source, group []int, warp func(float64) float64, horizon, targetObserved, hitShort float64) float64 {
	n := cfg.Devices
	byGroup := make([][]int, cfg.Groups)
	for i, g := range group {
		byGroup[g] = append(byGroup[g], i)
	}
	// Mixed gatherings (break crowds) draw everyone into one large
	// component, so they are substantially bigger than community
	// gatherings; sampleSize reproduces the sizing used below.
	sampleSize := func(rr *rng.Source, mixed bool) int {
		mean := cfg.GatheringSize
		if mixed {
			mean = 2 + 3*(cfg.GatheringSize-2)
		}
		m := 2 + rr.Poisson(mean-2)
		if m > n {
			m = n
		}
		return m
	}
	// Expected observed contacts per gathering, estimated over the
	// mixture of attendance distributions: each seated pair yields one
	// long contact (scan hit ≈ 1), every other pair yields
	// Poisson(GatheringPairContacts) short ones caught with probability
	// hitShort.
	const probes = 2000
	pr := r.Split()
	perEventSum := 0.0
	for i := 0; i < probes; i++ {
		m := sampleSize(pr, pr.Bool(cfg.GatheringMixedFrac))
		seated := 0
		for j := 0; j < m; j++ {
			if pr.Bool(cfg.GatheringSeatedFrac) {
				seated++
			}
		}
		seatedPairs := float64(seated*(seated-1)) / 2
		otherPairs := float64(m*(m-1))/2 - seatedPairs
		perEventSum += seatedPairs + otherPairs*cfg.GatheringPairContacts*hitShort
	}
	perEvent := perEventSum / probes
	window := cfg.GatheringWindow
	warpedHorizon := warp(horizon)
	// Expected gatherings per (group, window) are proportional to the
	// window's share of activity time; the constant calibrates the
	// expected observed contact count to targetObserved. Poisson sampling
	// keeps the calibration exact even when peak-hour rates exceed one
	// gathering per window.
	scale := targetObserved / (perEvent * float64(cfg.Groups) * warpedHorizon / window)
	emitted := 0.0
	for s0 := 0.0; s0 < horizon && e.err == nil; s0 += window {
		s1 := math.Min(s0+window, horizon)
		lambda := scale * (warp(s1) - warp(s0)) / window
		busy := make(map[int]bool) // devices already in a room this window
		for g := 0; g < cfg.Groups; g++ {
			for ev := r.Poisson(lambda); ev > 0; ev-- {
				mixed := r.Bool(cfg.GatheringMixedFrac)
				m := sampleSize(r, mixed)
				var members []int
				seen := make(map[int]bool, m)
				for guard := 0; len(members) < m && guard < 20*m; guard++ {
					var cand int
					if !mixed && len(byGroup[g]) > 0 && !r.Bool(cfg.GatheringMix) {
						cand = byGroup[g][r.Intn(len(byGroup[g]))]
					} else {
						cand = r.Intn(n)
					}
					// Rooms are mutually disjoint — you cannot sit in two
					// rooms at once. Mixed gatherings are hallway/break
					// hubs: they recruit anyone, including room members
					// (people at the door), which is what keeps
					// cross-room paths short when they exist at all.
					if mixed {
						if !seen[cand] {
							seen[cand] = true
							members = append(members, cand)
						}
					} else if !busy[cand] && !seen[cand] {
						busy[cand] = true
						seen[cand] = true
						members = append(members, cand)
					}
				}
				seated := make([]bool, len(members))
				nSeated := 0
				for i := range seated {
					seated[i] = r.Bool(cfg.GatheringSeatedFrac)
					if seated[i] {
						nSeated++
					}
				}
				for i := 0; i < len(members); i++ {
					for j := i + 1; j < len(members); j++ {
						if seated[i] && seated[j] {
							// One long contact: the pair stays together,
							// usually until the session ends, sometimes
							// beyond it.
							beg := s0 + r.Uniform(0, 0.4*(s1-s0))
							dur := seatedDuration(cfg, r)
							if r.Bool(0.8) && beg+dur > s1 {
								dur = s1 - beg
							}
							end := math.Min(beg+dur, horizon)
							e.contact(r, trace.NodeID(members[i]), trace.NodeID(members[j]), beg, end)
							emitted++
						}
					}
				}
				// Passing contacts happen as "mingle bursts": a member
				// wanders for a couple of minutes and flashes past
				// several co-members nearly simultaneously. A burst is a
				// star — its center reaches everyone it brushed in one
				// hop — so the per-slot contact graph is cliques plus
				// hubs rather than scattered independent edges, whose
				// spindly chains would otherwise dominate small-delay
				// connectivity and inflate the diameter.
				mm := float64(len(members))
				totalShort := (mm*(mm-1)/2 - float64(nSeated*(nSeated-1))/2) * cfg.GatheringPairContacts
				const burstSize = 5.0
				walksPerMember := totalShort / (mm * burstSize)
				for i := range members {
					for w := r.Poisson(walksPerMember); w > 0; w-- {
						walkAt := s0 + r.Uniform(0, s1-s0)
						for b := 1 + r.Poisson(burstSize-1); b > 0; b-- {
							j := r.Intn(len(members))
							if j == i {
								continue
							}
							emitted += hitShort
							beg := walkAt + r.Uniform(0, cfg.Granularity)
							dur := shortDuration(cfg, r)
							end := math.Min(beg+dur, horizon)
							e.contact(r, trace.NodeID(members[i]), trace.NodeID(members[j]), beg, end)
						}
					}
				}
			}
		}
	}
	return emitted
}

// shortDuration draws a passing-contact duration: shorter than one scan
// period, observed (when caught) as a single slot.
func shortDuration(cfg Config, r *rng.Source) float64 {
	hi := cfg.Granularity
	if cfg.RawContacts || hi <= 5 {
		hi = 120
	}
	return r.Uniform(5, hi)
}

// seatedDuration draws a sitting-together duration: a heavy-tailed spell
// of at least two scan periods, up to DurMax.
func seatedDuration(cfg Config, r *rng.Source) float64 {
	lo := 2 * cfg.Granularity
	if cfg.RawContacts || cfg.Granularity <= 5 {
		lo = 240
	}
	if lo >= cfg.DurMax {
		return cfg.DurMax
	}
	return r.ParetoTrunc(cfg.DurAlpha, lo, cfg.DurMax)
}

// sampleDuration draws a renewal/external contact duration: mostly
// passing contacts, occasionally a long spell (a chance encounter that
// turns into a conversation).
func sampleDuration(cfg Config, r *rng.Source) float64 {
	if r.Bool(cfg.DurShortFrac) {
		return shortDuration(cfg, r)
	}
	return seatedDuration(cfg, r)
}

// contact applies the Bluetooth scanning sampler and forwards the
// observed contact, if any, to the sink. Scan instants for a pair sit at
// a random per-contact phase of the granularity grid; a true contact is
// observed only if a scan falls inside it, from the first covering scan
// until one period after the last (the device is presumed in range until
// it fails a scan) — this is what turns most sub-period meetings into
// single-slot observations and misses many of them, the sampling effect
// of §5.1. RNG consumption is identical whether or not the sink has
// already failed, so a deterministic replay past an error point stays
// aligned.
func (e *emitter) contact(r *rng.Source, a, b trace.NodeID, beg, end float64) {
	if end <= beg {
		return
	}
	if e.cfg.RawContacts {
		e.send(trace.Contact{A: a, B: b, Beg: beg, End: end})
		return
	}
	g := e.cfg.Granularity
	phase := r.Uniform(0, g)
	first := phase + g*math.Ceil((beg-phase)/g)
	if first > end {
		return // fell between scans: missed
	}
	last := phase + g*math.Floor((end-phase)/g)
	obsEnd := math.Min(last+g, e.end)
	obsBeg := math.Max(first, 0)
	if obsEnd <= obsBeg {
		return
	}
	e.send(trace.Contact{A: a, B: b, Beg: obsBeg, End: obsEnd})
}

// send forwards one observed contact to the sink, latching the first
// sink error.
func (e *emitter) send(c trace.Contact) {
	if e.err != nil {
		return
	}
	e.err = e.sink(c)
}
