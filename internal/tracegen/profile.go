// Package tracegen generates the synthetic equivalents of the paper's
// four experimental data sets (Table 1): Infocom05, Infocom06, Hong-Kong
// and Reality Mining. The real iMote / Reality Mining traces are not
// redistributable, so each generator is calibrated to the published
// characteristics — device counts, duration, scan granularity, number of
// contacts, contact-duration mix (Figure 7), diurnal activity (Figure 6)
// and community heterogeneity — which are the properties the paper's
// diameter results depend on.
//
// Contacts are produced per pair by a renewal process in "activity time":
// a weekly activity profile warps real time so that contacts concentrate
// in sessions/work hours and vanish at night, inter-contact gaps follow a
// truncated Pareto law (heavy-tailed at human time scales, as measured by
// the inter-contact literature the paper cites), and pair rates are
// modulated by per-device sociability and community membership. Observed
// contacts are then snapped to the scanning granularity, reproducing the
// "75% of contacts last one slot" sampling effect of §5.1.
package tracegen

import (
	"fmt"
	"math"
	"sort"
)

// hoursPerWeek is the length of the weekly activity profile.
const hoursPerWeek = 7 * 24

// Profile is a weekly activity profile: Hourly[h] is the contact-activity
// multiplier during hour h of the week (hour 0 = Monday 00:00). The
// profile warps time for the renewal processes: activity 0 means no
// contacts can begin, activity 2 means contacts accrue twice as fast.
type Profile struct {
	Hourly [hoursPerWeek]float64
	// cum[h] is the integral of Hourly over the first h hours; built
	// lazily by normalize.
	cum []float64
}

// FlatProfile returns a profile with constant activity 1.
func FlatProfile() *Profile {
	var p Profile
	for i := range p.Hourly {
		p.Hourly[i] = 1
	}
	return &p
}

// ConferenceProfile models a conference venue: dense contact activity in
// morning and afternoon sessions, medium during breaks/lunch/evening
// socials, near-zero at night. The same pattern repeats every day
// (conferences do not pause for weekends).
func ConferenceProfile() *Profile {
	var p Profile
	for d := 0; d < 7; d++ {
		for h := 0; h < 24; h++ {
			var a float64
			switch {
			case h >= 9 && h < 12: // morning sessions
				a = 3.0
			case h >= 12 && h < 14: // lunch: mingling
				a = 2.0
			case h >= 14 && h < 18: // afternoon sessions
				a = 3.0
			case h >= 18 && h < 23: // social events
				a = 1.0
			case h >= 7 && h < 9: // breakfast, registration
				a = 0.8
			default: // night
				a = 0.02
			}
			p.Hourly[d*24+h] = a
		}
	}
	return &p
}

// CampusProfile models the Reality Mining environment: activity on
// weekday working hours, lighter evenings, quiet nights, and sparse
// weekends.
func CampusProfile() *Profile {
	var p Profile
	for d := 0; d < 7; d++ {
		weekend := d >= 5
		for h := 0; h < 24; h++ {
			var a float64
			switch {
			case h >= 9 && h < 18:
				a = 2.5
			case h >= 18 && h < 23:
				a = 0.7
			case h >= 7 && h < 9:
				a = 0.8
			default:
				a = 0.03
			}
			if weekend {
				a *= 0.25
			}
			p.Hourly[d*24+h] = a
		}
	}
	return &p
}

// CityProfile models the Hong-Kong experiment: unrelated people moving
// through a city — evening bar-time peaks, commute bumps, day-time noise.
func CityProfile() *Profile {
	var p Profile
	for d := 0; d < 7; d++ {
		for h := 0; h < 24; h++ {
			var a float64
			switch {
			case h >= 18 && h < 24: // evenings (the cohort met in a bar)
				a = 2.0
			case h >= 8 && h < 10, h >= 17 && h < 18: // commutes
				a = 1.2
			case h >= 10 && h < 17:
				a = 0.8
			default:
				a = 0.05
			}
			p.Hourly[d*24+h] = a
		}
	}
	return &p
}

func (p *Profile) normalize() {
	if p.cum != nil {
		return
	}
	p.cum = make([]float64, hoursPerWeek+1)
	for h := 0; h < hoursPerWeek; h++ {
		if p.Hourly[h] < 0 {
			panic(fmt.Sprintf("tracegen: negative activity %v at hour %d", p.Hourly[h], h))
		}
		p.cum[h+1] = p.cum[h] + p.Hourly[h]
	}
	if p.cum[hoursPerWeek] == 0 {
		panic("tracegen: profile has zero total activity")
	}
}

// weekSeconds is one week in seconds.
const weekSeconds = float64(hoursPerWeek) * 3600

// Warp maps real time t (seconds, t ≥ 0) to activity time: the integral
// of the activity multiplier from 0 to t, in activity-seconds.
func (p *Profile) Warp(t float64) float64 {
	if t <= 0 {
		return 0
	}
	p.normalize()
	weeks := math.Floor(t / weekSeconds)
	rem := t - weeks*weekSeconds
	hour := int(rem / 3600)
	if hour >= hoursPerWeek {
		hour = hoursPerWeek - 1
	}
	frac := rem - float64(hour)*3600
	return (weeks*p.cum[hoursPerWeek]+p.cum[hour])*3600 + p.Hourly[hour]*frac
}

// Unwarp is the inverse of Warp: it maps activity time back to the
// earliest real time with that much accumulated activity. Zero-activity
// stretches map to their left edge.
func (p *Profile) Unwarp(s float64) float64 {
	if s <= 0 {
		return 0
	}
	p.normalize()
	perWeek := p.cum[hoursPerWeek] * 3600
	weeks := math.Floor(s / perWeek)
	rem := s - weeks*perWeek
	// Find the hour whose cumulative range contains rem.
	h := sort.Search(hoursPerWeek, func(h int) bool { return p.cum[h+1]*3600 >= rem })
	if h == hoursPerWeek {
		h = hoursPerWeek - 1
	}
	inHour := rem - p.cum[h]*3600
	var frac float64
	if p.Hourly[h] > 0 {
		frac = inHour / p.Hourly[h]
		if frac > 3600 {
			frac = 3600
		}
	}
	return weeks*weekSeconds + float64(h)*3600 + frac
}

// MeanActivity returns the average activity multiplier over the week.
func (p *Profile) MeanActivity() float64 {
	p.normalize()
	return p.cum[hoursPerWeek] / hoursPerWeek
}
