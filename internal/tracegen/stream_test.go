package tracegen

import (
	"errors"
	"testing"

	"opportunet/internal/trace"
)

// streamTestConfig is a small-but-structured configuration exercising
// every generation component (walkers, gatherings, externals, scan
// sampling) quickly.
func streamTestConfig() Config {
	cfg := Infocom05Config()
	cfg.Devices = 12
	cfg.DurationDays = 0.5
	cfg.TargetContacts = 800
	cfg.ExternalDevices = 3
	cfg.ExternalContacts = 60
	return cfg
}

// TestGenerateStreamMatchesGenerate is the equivalence gate for the
// streaming path: collecting every streamed batch (copying, since the
// backing array is reused) and sorting must reproduce Generate's trace
// exactly — same header, same contacts, same order.
func TestGenerateStreamMatchesGenerate(t *testing.T) {
	cfg := streamTestConfig()
	for _, seed := range []uint64{1, 7, 42} {
		want, err := Generate(cfg, seed)
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		for _, flushEvery := range []int{0, 1, 17, 1 << 20} {
			var got []trace.Contact
			batches := 0
			meta, err := GenerateStream(cfg, seed, flushEvery, func(cs []trace.Contact) error {
				got = append(got, cs...) // copies out of the reused batch
				batches++
				return nil
			})
			if err != nil {
				t.Fatalf("GenerateStream(flush=%d): %v", flushEvery, err)
			}
			if len(meta.Contacts) != 0 {
				t.Fatalf("skeleton trace carries %d contacts", len(meta.Contacts))
			}
			if meta.Name != want.Name || meta.Start != want.Start || meta.End != want.End ||
				meta.Granularity != want.Granularity || meta.NumNodes() != want.NumNodes() {
				t.Fatalf("skeleton header mismatch: %+v", meta)
			}
			if flushEvery == 1 && batches != len(got) {
				t.Fatalf("flushEvery=1 delivered %d batches for %d contacts", batches, len(got))
			}
			tr := &trace.Trace{Name: meta.Name, Granularity: meta.Granularity,
				Start: meta.Start, End: meta.End, Kinds: meta.Kinds, Contacts: got}
			tr.SortByBeg()
			if len(tr.Contacts) != len(want.Contacts) {
				t.Fatalf("flush=%d: got %d contacts, want %d", flushEvery, len(tr.Contacts), len(want.Contacts))
			}
			for i := range tr.Contacts {
				if tr.Contacts[i] != want.Contacts[i] {
					t.Fatalf("flush=%d: contact %d = %+v, want %+v", flushEvery, i, tr.Contacts[i], want.Contacts[i])
				}
			}
		}
	}
}

// TestGenerateStreamSinkError checks that a sink failure aborts the
// generation and surfaces as-is.
func TestGenerateStreamSinkError(t *testing.T) {
	cfg := streamTestConfig()
	boom := errors.New("disk full")
	calls := 0
	_, err := GenerateStream(cfg, 1, 16, func(cs []trace.Contact) error {
		calls++
		if calls == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if calls != 3 {
		t.Fatalf("sink called %d times after error, want exactly 3", calls)
	}
}

// TestGenerateStreamValidContacts streams into a fresh trace skeleton
// and validates it, mirroring what a writer-to-disk consumer produces.
func TestGenerateStreamValidContacts(t *testing.T) {
	cfg := streamTestConfig()
	var got []trace.Contact
	meta, err := GenerateStream(cfg, 5, 0, func(cs []trace.Contact) error {
		got = append(got, cs...)
		return nil
	})
	if err != nil {
		t.Fatalf("GenerateStream: %v", err)
	}
	meta.Contacts = got
	meta.SortByBeg()
	if err := meta.Validate(); err != nil {
		t.Fatalf("streamed trace invalid: %v", err)
	}
}
