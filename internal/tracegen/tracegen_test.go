package tracegen

import (
	"math"
	"testing"

	"opportunet/internal/trace"
)

func TestProfileWarpUnwarpInverse(t *testing.T) {
	for _, p := range []*Profile{FlatProfile(), ConferenceProfile(), CampusProfile(), CityProfile()} {
		for _, tt := range []float64{0, 1800, 3600 * 5, 86400 * 2.3, 86400 * 9} {
			s := p.Warp(tt)
			back := p.Unwarp(s)
			// Unwarp returns the earliest time with that activity; warping
			// again must give the same activity value.
			if math.Abs(p.Warp(back)-s) > 1e-6 {
				t.Fatalf("Warp(Unwarp(%v)) = %v, want %v", tt, p.Warp(back), s)
			}
			if back > tt+1e-6 {
				t.Fatalf("Unwarp(%v) = %v later than original %v", s, back, tt)
			}
		}
	}
}

func TestProfileWarpMonotone(t *testing.T) {
	p := ConferenceProfile()
	prev := -1.0
	for tt := 0.0; tt < 86400*8; tt += 977 {
		s := p.Warp(tt)
		if s < prev {
			t.Fatalf("Warp not monotone at %v", tt)
		}
		prev = s
	}
}

func TestProfileFlatIsIdentity(t *testing.T) {
	p := FlatProfile()
	for _, tt := range []float64{0, 100, 86400, 604800 * 2.5} {
		if math.Abs(p.Warp(tt)-tt) > 1e-6 {
			t.Fatalf("flat Warp(%v) = %v", tt, p.Warp(tt))
		}
	}
	if p.MeanActivity() != 1 {
		t.Fatalf("flat MeanActivity = %v", p.MeanActivity())
	}
}

func TestProfileNightIsQuiet(t *testing.T) {
	p := ConferenceProfile()
	// Activity gained between 02:00 and 05:00 must be tiny compared to
	// 09:00–12:00.
	night := p.Warp(5*3600) - p.Warp(2*3600)
	morning := p.Warp(12*3600) - p.Warp(9*3600)
	if night > morning/20 {
		t.Fatalf("night activity %v too high vs morning %v", night, morning)
	}
}

func TestParetoTruncMeanUnit(t *testing.T) {
	// Check against direct numeric integration.
	for _, alpha := range []float64{0.7, 1.0, 1.5} {
		ratio := 100.0
		analytic := paretoTruncMeanUnit(alpha, ratio)
		// Numeric: E = ∫ x f(x) dx on [1, ratio].
		c := 1 - math.Pow(ratio, -alpha)
		num := 0.0
		const steps = 200000
		for i := 0; i < steps; i++ {
			x := 1 + (ratio-1)*(float64(i)+0.5)/steps
			f := alpha * math.Pow(x, -alpha-1) / c
			num += x * f * (ratio - 1) / steps
		}
		if math.Abs(analytic-num)/num > 0.01 {
			t.Fatalf("alpha=%v: analytic mean %v, numeric %v", alpha, analytic, num)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Infocom05Config()
	cfg.TargetContacts = 2000 // keep the test fast
	cfg.ExternalDevices, cfg.ExternalContacts = 10, 30
	a, err := Generate(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Contacts) != len(b.Contacts) {
		t.Fatalf("non-deterministic contact count: %d vs %d", len(a.Contacts), len(b.Contacts))
	}
	for i := range a.Contacts {
		if a.Contacts[i] != b.Contacts[i] {
			t.Fatalf("contact %d differs", i)
		}
	}
	c, err := Generate(cfg, 43)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Contacts) == len(a.Contacts) {
		same := true
		for i := range c.Contacts {
			if c.Contacts[i] != a.Contacts[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestGenerateHitsTargetCount(t *testing.T) {
	cfg := Infocom05Config()
	cfg.ExternalDevices, cfg.ExternalContacts = 0, 0
	tr, err := Generate(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(len(tr.Contacts))
	want := float64(cfg.TargetContacts)
	if math.Abs(got-want)/want > 0.25 {
		t.Fatalf("generated %v contacts, want within 25%% of %v", got, want)
	}
}

func TestGenerateStructure(t *testing.T) {
	cfg := HongKongConfig()
	tr, err := Generate(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumInternal() != 37 || tr.NumNodes() != 37+868 {
		t.Fatalf("device counts: internal %d, total %d", tr.NumInternal(), tr.NumNodes())
	}
	// No external-external contacts (the experiment cannot see them).
	for _, c := range tr.Contacts {
		if tr.Kinds[c.A] == trace.External && tr.Kinds[c.B] == trace.External {
			t.Fatal("generated an external-external contact")
		}
	}
	// All observed times on the scan grid length: durations are
	// multiples of granularity (sampling effect) except window clips.
	offGrid := 0
	for _, c := range tr.Contacts {
		d := c.Duration()
		if math.Abs(d-tr.Granularity*math.Round(d/tr.Granularity)) > 1e-6 && c.End != tr.End {
			offGrid++
		}
	}
	if offGrid > 0 {
		t.Fatalf("%d observed durations off the scan grid", offGrid)
	}
}

func TestGenerateSingleSlotFraction(t *testing.T) {
	// §5.1: about 75% of Infocom06 contacts last one slot. The generator
	// must land in that regime (60–90%).
	cfg := Infocom06Config()
	cfg.TargetContacts = 20000 // scaled for test speed
	cfg.ExternalDevices, cfg.ExternalContacts = 0, 0
	tr, err := Generate(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	single := 0
	for _, c := range tr.Contacts {
		if c.Duration() <= tr.Granularity+1e-9 {
			single++
		}
	}
	frac := float64(single) / float64(len(tr.Contacts))
	if frac < 0.6 || frac > 0.92 {
		t.Fatalf("single-slot fraction %v, want ~0.75", frac)
	}
	// And a small but non-zero fraction of contacts longer than an hour
	// (Figure 7 reports ~0.4%).
	long := 0
	for _, c := range tr.Contacts {
		if c.Duration() > 3600 {
			long++
		}
	}
	lfrac := float64(long) / float64(len(tr.Contacts))
	if lfrac <= 0 || lfrac > 0.05 {
		t.Fatalf("hour-long fraction %v, want small but positive", lfrac)
	}
}

func TestGenerateDiurnalConcentration(t *testing.T) {
	cfg := Infocom05Config()
	cfg.TargetContacts = 5000
	cfg.ExternalDevices, cfg.ExternalContacts = 0, 0
	tr, err := Generate(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Count contacts by hour of day (trace starts 08:00).
	night, day := 0, 0
	for _, c := range tr.Contacts {
		h := math.Mod(8+c.Beg/3600, 24)
		if h >= 1 && h < 6 {
			night++
		}
		if h >= 9 && h < 18 {
			day++
		}
	}
	if night*20 > day {
		t.Fatalf("night contacts %d vs day %d: diurnal profile not applied", night, day)
	}
}

func TestGenerateCommunityStructure(t *testing.T) {
	cfg := RealityMiningScaled(20)
	cfg.TargetContacts = 8000
	tr, err := Generate(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	// With an in-group boost of 10, the distribution of per-pair contact
	// counts must be strongly uneven: the busiest 10% of pairs carry
	// more than half the contacts.
	counts := map[[2]trace.NodeID]int{}
	for _, c := range tr.Contacts {
		k := [2]trace.NodeID{c.A, c.B}
		if k[0] > k[1] {
			k[0], k[1] = k[1], k[0]
		}
		counts[k]++
	}
	var all []int
	total := 0
	for _, v := range counts {
		all = append(all, v)
		total += v
	}
	// Sort descending.
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[j] > all[i] {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	top := 0
	nPairs := cfg.Devices * (cfg.Devices - 1) / 2
	cut := nPairs / 10
	for i := 0; i < cut && i < len(all); i++ {
		top += all[i]
	}
	if float64(top) < 0.42*float64(total) {
		t.Fatalf("top decile of pairs carries only %d/%d contacts: heterogeneity too weak", top, total)
	}
}

func TestGenerateRawContacts(t *testing.T) {
	cfg := Infocom05Config()
	cfg.TargetContacts = 1000
	cfg.ExternalDevices, cfg.ExternalContacts = 0, 0
	cfg.RawContacts = true
	tr, err := Generate(cfg, 13)
	if err != nil {
		t.Fatal(err)
	}
	// Raw contacts are not snapped: most durations off the grid.
	off := 0
	for _, c := range tr.Contacts {
		d := c.Duration()
		if math.Abs(d-120*math.Round(d/120)) > 1e-6 {
			off++
		}
	}
	if off < len(tr.Contacts)/2 {
		t.Fatalf("raw mode still snapped: %d/%d off grid", off, len(tr.Contacts))
	}
}

func TestGenerateValidatesConfig(t *testing.T) {
	bad := []Config{
		{},
		{Devices: 1, DurationDays: 1, Granularity: 60, Groups: 1, InGroupBoost: 1, GapAlpha: 1, GapMaxFactor: 10, DurAlpha: 1, DurMax: 100},
		func() Config { c := Infocom05Config(); c.GapAlpha = 0; return c }(),
		func() Config { c := Infocom05Config(); c.InGroupBoost = 0.5; return c }(),
		func() Config { c := Infocom05Config(); c.DurShortFrac = 2; return c }(),
		func() Config { c := Infocom05Config(); c.Granularity = 0; return c }(),
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg, 1); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestDatasetConfigsMatchTable1(t *testing.T) {
	cases := []struct {
		cfg     Config
		devices int
		days    float64
		gran    float64
	}{
		{Infocom05Config(), 41, 3, 120},
		{Infocom06Config(), 78, 4, 120},
		{HongKongConfig(), 37, 7, 120},
		{RealityMiningConfig(), 97, 246, 300},
	}
	for _, c := range cases {
		if c.cfg.Devices != c.devices || c.cfg.DurationDays != c.days || c.cfg.Granularity != c.gran {
			t.Errorf("%s config deviates from Table 1: %+v", c.cfg.Name, c.cfg)
		}
	}
}

func TestRealityMiningScaled(t *testing.T) {
	cfg := RealityMiningScaled(24.6)
	if math.Abs(cfg.DurationDays-24.6) > 1e-9 {
		t.Fatalf("days = %v", cfg.DurationDays)
	}
	if cfg.TargetContacts != 11466 {
		t.Fatalf("scaled target = %d, want 11466", cfg.TargetContacts)
	}
}
