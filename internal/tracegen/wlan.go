package tracegen

import (
	"fmt"
	"math"
	"sort"

	"opportunet/internal/rng"
	"opportunet/internal/timeline"
	"opportunet/internal/trace"
)

// WLAN association traces are the other family of mobility data the
// paper's authors analyzed (campus WLAN at Dartmouth and UCSD, §5.1 —
// "we also made the same observations on ... other publicly available
// data sets, including traces from campus WLAN"): devices associate with
// access points, and two devices are considered in contact while
// associated with the same AP. GenerateWLAN reproduces that pipeline:
// association sessions driven by a weekly activity profile and a home-AP
// routine, then contacts derived from co-association overlap. Because
// every co-associated set is pairwise in contact, WLAN-derived traces
// are naturally transitive (clique-structured) — a useful, structurally
// different workload for the path engine.

// WLANConfig describes a synthetic campus WLAN data set.
type WLANConfig struct {
	// Name labels the trace.
	Name string
	// Devices is the number of tracked devices; APs the number of access
	// points.
	Devices, APs int
	// DurationDays is the observation window.
	DurationDays float64
	// Profile is the weekly activity profile (nil = CampusProfile).
	Profile *Profile
	// StartHour anchors the trace start within the week.
	StartHour float64
	// SessionsPerDay is the mean number of association sessions per
	// device per day.
	SessionsPerDay float64
	// DwellMean is the mean association duration in seconds.
	DwellMean float64
	// HomeBias is the probability a session associates to the device's
	// home AP (its office/dorm) rather than a uniform one.
	HomeBias float64
}

func (c *WLANConfig) validate() error {
	switch {
	case c.Devices < 2:
		return fmt.Errorf("tracegen: wlan needs at least 2 devices")
	case c.APs < 1:
		return fmt.Errorf("tracegen: wlan needs at least 1 access point")
	case c.DurationDays <= 0:
		return fmt.Errorf("tracegen: wlan non-positive duration")
	case c.SessionsPerDay <= 0 || c.DwellMean <= 0:
		return fmt.Errorf("tracegen: wlan needs positive session rate and dwell")
	case c.HomeBias < 0 || c.HomeBias > 1:
		return fmt.Errorf("tracegen: wlan HomeBias outside [0,1]")
	}
	return nil
}

// CampusWLANConfig returns a Dartmouth-flavoured default: a mid-size
// campus population over two weeks.
func CampusWLANConfig() WLANConfig {
	return WLANConfig{
		Name:           "campus-wlan",
		Devices:        120,
		APs:            25,
		DurationDays:   14,
		Profile:        CampusProfile(),
		StartHour:      0,
		SessionsPerDay: 6,
		DwellMean:      45 * 60,
		HomeBias:       0.6,
	}
}

// association is one device's stay at an AP.
type association struct {
	dev      trace.NodeID
	beg, end float64
}

// GenerateWLAN produces a synthetic WLAN co-association contact trace.
func GenerateWLAN(cfg WLANConfig, seed uint64) (*trace.Trace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rng.New(seed)
	prof := cfg.Profile
	if prof == nil {
		prof = CampusProfile()
	}
	horizon := cfg.DurationDays * 86400
	startAbs := cfg.StartHour * 3600
	warp := func(t float64) float64 { return prof.Warp(startAbs+t) - prof.Warp(startAbs) }
	unwarp := func(s float64) float64 { return prof.Unwarp(prof.Warp(startAbs)+s) - startAbs }
	warpedHorizon := warp(horizon)

	tr := &trace.Trace{
		Name:  cfg.Name,
		Start: 0,
		End:   horizon,
		Kinds: make([]trace.Kind, cfg.Devices),
	}

	// Sessions per device, bucketed per AP.
	byAP := make([][]association, cfg.APs)
	sessions := cfg.SessionsPerDay * cfg.DurationDays
	if sessions < 1 {
		sessions = 1
	}
	meanGap := warpedHorizon / sessions
	for dev := 0; dev < cfg.Devices; dev++ {
		home := r.Intn(cfg.APs)
		s := r.Exponential(1/meanGap) * r.Float64()
		for s < warpedHorizon {
			beg := unwarp(s)
			end := math.Min(beg+r.Exponential(1/cfg.DwellMean), horizon)
			ap := home
			if !r.Bool(cfg.HomeBias) {
				ap = r.Intn(cfg.APs)
			}
			if end > beg {
				byAP[ap] = append(byAP[ap], association{trace.NodeID(dev), beg, end})
			}
			s += r.Exponential(1 / meanGap)
		}
	}

	// Contacts: pairwise overlap of co-associations at the same AP. A
	// device may hold overlapping sessions at one AP (renewal in warped
	// time is memoryless); those self-overlaps are skipped.
	for _, assocs := range byAP {
		sort.Slice(assocs, func(i, j int) bool { return assocs[i].beg < assocs[j].beg })
		for i, a := range assocs {
			for j := i + 1; j < len(assocs); j++ {
				b := assocs[j]
				if b.beg >= a.end {
					break // sorted by beg: no later session overlaps a
				}
				if a.dev == b.dev {
					continue
				}
				end := math.Min(a.end, b.end)
				if end > b.beg {
					tr.Contacts = append(tr.Contacts, trace.Contact{
						A: a.dev, B: b.dev, Beg: b.beg, End: end,
					})
				}
			}
		}
	}
	// Merge duplicate overlaps of the same pair (several shared sessions
	// may chain).
	tr = timeline.NormalizePairs(tr)
	tr.Name = cfg.Name
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("tracegen: wlan generated invalid trace: %w", err)
	}
	return tr, nil
}
