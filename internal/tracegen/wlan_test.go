package tracegen

import (
	"math"
	"testing"

	"opportunet/internal/trace"
)

func TestGenerateWLANBasics(t *testing.T) {
	cfg := CampusWLANConfig()
	cfg.Devices = 40
	cfg.DurationDays = 3
	tr, err := GenerateWLAN(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() != 40 || tr.NumInternal() != 40 {
		t.Fatalf("device counts wrong: %d", tr.NumNodes())
	}
	if len(tr.Contacts) == 0 {
		t.Fatal("no co-association contacts generated")
	}
	for _, c := range tr.Contacts {
		if c.End <= c.Beg {
			t.Fatalf("empty contact %+v", c)
		}
		if c.Beg < 0 || c.End > tr.End {
			t.Fatalf("contact outside window %+v", c)
		}
	}
}

func TestGenerateWLANDeterministic(t *testing.T) {
	cfg := CampusWLANConfig()
	cfg.Devices, cfg.DurationDays = 30, 2
	a, _ := GenerateWLAN(cfg, 9)
	b, _ := GenerateWLAN(cfg, 9)
	if len(a.Contacts) != len(b.Contacts) {
		t.Fatal("non-deterministic")
	}
	for i := range a.Contacts {
		if a.Contacts[i] != b.Contacts[i] {
			t.Fatal("contacts differ across identical runs")
		}
	}
}

func TestGenerateWLANTransitivity(t *testing.T) {
	// Co-association contacts are transitive at any instant: if A-B and
	// B-C overlap at time t at the same AP... transitivity only holds
	// within one AP, so check the weaker clique property: pick a random
	// instant and verify that among contacts active then, whenever A-B
	// and B-C are both active through the same AP-driven overlap, A-C
	// overlaps too is not directly checkable post-merge. Instead verify
	// the high triangle density relative to a degree-matched random
	// graph: count triangles in the contact graph of a busy hour.
	cfg := CampusWLANConfig()
	cfg.Devices, cfg.DurationDays = 60, 2
	tr, err := GenerateWLAN(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Static graph of a midday hour.
	win := tr.TimeWindow(10*3600, 11*3600)
	adj := map[[2]trace.NodeID]bool{}
	deg := map[trace.NodeID]int{}
	for _, c := range win.Contacts {
		k := [2]trace.NodeID{c.A, c.B}
		if k[0] > k[1] {
			k[0], k[1] = k[1], k[0]
		}
		if !adj[k] {
			adj[k] = true
			deg[c.A]++
			deg[c.B]++
		}
	}
	if len(adj) < 10 {
		t.Skip("hour too quiet in this draw")
	}
	triangles := 0
	for k := range adj {
		for v := trace.NodeID(0); v < 60; v++ {
			a := [2]trace.NodeID{k[0], v}
			b := [2]trace.NodeID{k[1], v}
			if a[0] > a[1] {
				a[0], a[1] = a[1], a[0]
			}
			if b[0] > b[1] {
				b[0], b[1] = b[1], b[0]
			}
			if adj[a] && adj[b] {
				triangles++
			}
		}
	}
	triangles /= 3
	// Degree-matched ER expectation: C(n,3) p^3 with p = 2m/(n(n-1)).
	n, m := 60.0, float64(len(adj))
	p := 2 * m / (n * (n - 1))
	expER := n * (n - 1) * (n - 2) / 6 * p * p * p
	if float64(triangles) < 3*expER {
		t.Fatalf("triangle count %d not clearly above ER expectation %.1f — co-association should produce cliques", triangles, expER)
	}
}

func TestGenerateWLANDiurnal(t *testing.T) {
	cfg := CampusWLANConfig()
	cfg.Devices, cfg.DurationDays = 50, 3
	tr, err := GenerateWLAN(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	night, day := 0, 0
	for _, c := range tr.Contacts {
		h := math.Mod(c.Beg/3600, 24)
		if h >= 1 && h < 6 {
			night++
		}
		if h >= 9 && h < 18 {
			day++
		}
	}
	if night*5 > day {
		t.Fatalf("night %d vs day %d: campus profile not applied", night, day)
	}
}

func TestGenerateWLANValidation(t *testing.T) {
	bad := []WLANConfig{
		{},
		{Devices: 1, APs: 1, DurationDays: 1, SessionsPerDay: 1, DwellMean: 1},
		{Devices: 5, APs: 0, DurationDays: 1, SessionsPerDay: 1, DwellMean: 1},
		{Devices: 5, APs: 1, DurationDays: 0, SessionsPerDay: 1, DwellMean: 1},
		{Devices: 5, APs: 1, DurationDays: 1, SessionsPerDay: 0, DwellMean: 1},
		{Devices: 5, APs: 1, DurationDays: 1, SessionsPerDay: 1, DwellMean: 1, HomeBias: 2},
	}
	for i, cfg := range bad {
		if _, err := GenerateWLAN(cfg, 1); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestGenerateWLANNoSelfContacts(t *testing.T) {
	cfg := CampusWLANConfig()
	cfg.Devices, cfg.DurationDays, cfg.SessionsPerDay = 20, 2, 20 // overlapping sessions likely
	tr, err := GenerateWLAN(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range tr.Contacts {
		if c.A == c.B {
			t.Fatal("self contact from overlapping sessions of one device")
		}
	}
}
