// Package opportunet is a library for analyzing opportunistic mobile
// networks, implementing "The Diameter of Opportunistic Mobile Networks"
// (Chaintreau, Mtibaa, Massoulié, Diot — CoNEXT 2007) in full: the
// temporal-network path calculus, the exhaustive delay-optimal path
// algorithm, the (1−ε)-diameter, the random temporal network theory and
// its phase transition, synthetic equivalents of the paper's four
// mobility data sets, and forwarding-algorithm evaluation.
//
// This package is the stable facade over the implementation packages in
// internal/; it re-exports the types a downstream user needs and offers
// one-call helpers for the common workflows:
//
//	tr, _ := opportunet.LoadTrace("infocom05.trace")
//	rep, _ := opportunet.Analyze(tr, opportunet.DefaultAnalysis())
//	fmt.Println(rep.Diameter99, rep.SuccessWithin(10*time.Minute))
//
// For fine-grained control use the re-exported constructors (Compute,
// NewStudy, generators) directly; their full APIs live in the respective
// packages.
package opportunet

import (
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"opportunet/internal/analysis"
	"opportunet/internal/core"
	"opportunet/internal/stats"
	"opportunet/internal/trace"
	"opportunet/internal/tracegen"
)

// Re-exported core types. See the internal packages for full method
// documentation.
type (
	// Trace is a contact trace: a static device set plus timed contacts.
	Trace = trace.Trace
	// Contact is one contact interval between two devices.
	Contact = trace.Contact
	// NodeID identifies a device.
	NodeID = trace.NodeID
	// Kind distinguishes internal (experimental) from external devices.
	Kind = trace.Kind
	// ComputeOptions configures the optimal-path engine.
	ComputeOptions = core.Options
	// PathResult holds all Pareto-optimal path summaries of a trace.
	PathResult = core.Result
	// Frontier is the delivery-function representation of one pair.
	Frontier = core.Frontier
	// Path is a reconstructed optimal relay sequence.
	Path = core.Path
	// Study aggregates path results over all pairs and starting times.
	Study = analysis.Study
	// DatasetConfig parameterizes the synthetic data set generators.
	DatasetConfig = tracegen.Config
)

// Device kinds.
const (
	Internal = trace.Internal
	External = trace.External
)

// Compute runs the exhaustive delay-optimal path computation (§4 of the
// paper) over the trace.
func Compute(tr *Trace, opt ComputeOptions) (*PathResult, error) {
	return core.Compute(tr, opt)
}

// ReconstructPath exhibits one delay-optimal relay sequence.
func ReconstructPath(tr *Trace, src, dst NodeID, t0 float64, maxHops int, opt ComputeOptions) (*Path, error) {
	return core.ReconstructPath(tr, src, dst, t0, maxHops, opt)
}

// NewStudy prepares whole-trace aggregation (delay CDFs, diameters).
func NewStudy(tr *Trace, opt ComputeOptions) (*Study, error) {
	return analysis.NewStudy(tr, opt)
}

// LoadTrace reads a trace file in the text format of cmd/tracegen.
func LoadTrace(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}

// ReadTrace parses a trace from a reader.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// Synthetic data set generators calibrated to the paper's Table 1.
var (
	Infocom05Config     = tracegen.Infocom05Config
	Infocom06Config     = tracegen.Infocom06Config
	HongKongConfig      = tracegen.HongKongConfig
	RealityMiningConfig = tracegen.RealityMiningConfig
)

// GenerateDataset produces a synthetic data set from a configuration and
// seed, deterministically.
func GenerateDataset(cfg DatasetConfig, seed uint64) (*Trace, error) {
	return tracegen.Generate(cfg, seed)
}

// AnalysisOptions configures Analyze.
type AnalysisOptions struct {
	// Epsilon is the diameter confidence parameter (default 0.01, the
	// paper's 99%).
	Epsilon float64
	// GridPoints is the delay-grid resolution (default 40).
	GridPoints int
	// MinBudget and MaxBudget bound the delay grid; defaults are 2
	// minutes and the trace duration (capped at one week).
	MinBudget, MaxBudget float64
	// HopBounds are the per-hop-bound CDF curves to compute (default
	// 1..6).
	HopBounds []int
	// Engine passes through engine options (hop cap, directed contacts,
	// per-hop transmission delay).
	Engine ComputeOptions
}

// DefaultAnalysis returns the options the paper's evaluation uses.
func DefaultAnalysis() AnalysisOptions {
	return AnalysisOptions{Epsilon: 0.01, GridPoints: 40, HopBounds: []int{1, 2, 3, 4, 5, 6}}
}

// Report is the outcome of Analyze: the paper's headline quantities for
// one trace.
type Report struct {
	// Study gives access to the underlying aggregation for custom
	// queries.
	Study *Study
	// Grid is the delay-budget grid used, in seconds.
	Grid []float64
	// Success[k] is the delay CDF for HopBounds[k]; Unbounded is the
	// flooding reference.
	Success   map[int][]float64
	Unbounded []float64
	// Diameter99 is the (1−ε)-diameter at the configured ε;
	// Diameter95 uses 5ε for context.
	Diameter99, Diameter95 int
	// MaxUsefulHops is the engine fixpoint: no optimal path in the trace
	// uses more hops.
	MaxUsefulHops int
}

// Analyze runs the full §4–§5 pipeline on a trace: exhaustive optimal
// paths, aggregated delay CDFs, and the network diameter.
func Analyze(tr *Trace, opt AnalysisOptions) (*Report, error) {
	if opt.Epsilon <= 0 {
		opt.Epsilon = 0.01
	}
	if opt.GridPoints < 2 {
		opt.GridPoints = 40
	}
	if len(opt.HopBounds) == 0 {
		opt.HopBounds = []int{1, 2, 3, 4, 5, 6}
	}
	st, err := analysis.NewStudy(tr, opt.Engine)
	if err != nil {
		return nil, err
	}
	lo := opt.MinBudget
	if lo <= 0 {
		lo = 120
	}
	hi := opt.MaxBudget
	if hi <= 0 {
		hi = math.Min(tr.Duration(), 7*86400)
	}
	if hi <= lo {
		return nil, fmt.Errorf("opportunet: delay grid [%v, %v] is empty", lo, hi)
	}
	rep := &Report{
		Study:         st,
		Grid:          stats.LogSpace(lo, hi, opt.GridPoints),
		Success:       make(map[int][]float64),
		MaxUsefulHops: st.Result.Hops,
	}
	bounds := append(append([]int(nil), opt.HopBounds...), analysis.Unbounded)
	for _, cdf := range st.DelayCDFs(bounds, rep.Grid) {
		if cdf.HopBound == analysis.Unbounded {
			rep.Unbounded = cdf.Success
		} else {
			rep.Success[cdf.HopBound] = cdf.Success
		}
	}
	rep.Diameter99, _ = st.Diameter(opt.Epsilon, rep.Grid)
	rep.Diameter95, _ = st.Diameter(5*opt.Epsilon, rep.Grid)
	return rep, nil
}

// SuccessWithin returns the flooding success probability within the
// given delay budget (uniform pair and starting time).
func (r *Report) SuccessWithin(d time.Duration) float64 {
	return r.Study.SuccessProbability(d.Seconds(), analysis.Unbounded)
}

// SuccessWithinHops is SuccessWithin restricted to paths of at most
// maxHops contacts.
func (r *Report) SuccessWithinHops(d time.Duration, maxHops int) float64 {
	return r.Study.SuccessProbability(d.Seconds(), maxHops)
}
