package opportunet

import (
	"bytes"
	"math"
	"testing"
	"time"
)

// facadeTrace builds a small trace through the facade types.
func facadeTrace() *Trace {
	return &Trace{
		Name:  "facade",
		Start: 0,
		End:   7200,
		Kinds: []Kind{Internal, Internal, Internal},
		Contacts: []Contact{
			{A: 0, B: 1, Beg: 0, End: 600},
			{A: 1, B: 2, Beg: 1200, End: 1800},
			{A: 0, B: 2, Beg: 5000, End: 5600},
		},
	}
}

func TestFacadeComputeAndReconstruct(t *testing.T) {
	tr := facadeTrace()
	res, err := Compute(tr, ComputeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Frontier(0, 2, 0)
	if f.Del(0) != 1200 {
		t.Fatalf("Del(0) = %v, want 1200", f.Del(0))
	}
	p, err := ReconstructPath(tr, 0, 2, 0, 0, ComputeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Hops) != 2 || p.Delivered != 1200 {
		t.Fatalf("path %+v", p)
	}
}

func TestFacadeAnalyze(t *testing.T) {
	rep, err := Analyze(facadeTrace(), DefaultAnalysis())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Diameter99 < 1 || rep.Diameter99 > 2 {
		t.Fatalf("diameter = %d", rep.Diameter99)
	}
	if rep.MaxUsefulHops < 2 {
		t.Fatalf("MaxUsefulHops = %d", rep.MaxUsefulHops)
	}
	if len(rep.Unbounded) != len(rep.Grid) {
		t.Fatal("unbounded CDF missing")
	}
	if _, ok := rep.Success[1]; !ok {
		t.Fatal("hop-1 CDF missing")
	}
	// Success within 2 hours must exceed success within 2 minutes.
	if rep.SuccessWithin(2*time.Hour) <= rep.SuccessWithin(2*time.Minute) {
		t.Fatal("success not increasing in the budget")
	}
	if rep.SuccessWithinHops(time.Hour, 1) > rep.SuccessWithin(time.Hour)+1e-12 {
		t.Fatal("hop-bounded success exceeds flooding")
	}
}

func TestFacadeAnalyzeDefaultsApplied(t *testing.T) {
	// Zero-valued options must be filled with defaults rather than fail.
	rep, err := Analyze(facadeTrace(), AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Grid) != 40 {
		t.Fatalf("default grid size = %d", len(rep.Grid))
	}
}

func TestFacadeAnalyzeRejectsEmptyGrid(t *testing.T) {
	tr := facadeTrace()
	opt := DefaultAnalysis()
	opt.MinBudget, opt.MaxBudget = 100, 50
	if _, err := Analyze(tr, opt); err == nil {
		t.Fatal("inverted grid accepted")
	}
}

func TestFacadeGenerateDataset(t *testing.T) {
	cfg := Infocom05Config()
	cfg.TargetContacts = 800
	cfg.Devices = 12
	cfg.ExternalDevices, cfg.ExternalContacts = 0, 0
	tr, err := GenerateDataset(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumInternal() != 12 || len(tr.Contacts) == 0 {
		t.Fatalf("generated trace wrong: %d devices, %d contacts", tr.NumInternal(), len(tr.Contacts))
	}
}

func TestFacadeTraceIO(t *testing.T) {
	tr := facadeTrace()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != tr.NumNodes() || len(back.Contacts) != len(tr.Contacts) {
		t.Fatal("round trip mismatch")
	}
	if _, err := LoadTrace("/nonexistent/path.trace"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestFacadeReportConsistency(t *testing.T) {
	// The report's grid values must match direct Study queries.
	rep, err := Analyze(facadeTrace(), DefaultAnalysis())
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range rep.Grid {
		direct := rep.Study.SuccessProbability(d, 0)
		if math.Abs(direct-rep.Unbounded[i]) > 1e-12 {
			t.Fatalf("grid %d: report %v vs study %v", i, rep.Unbounded[i], direct)
		}
	}
}

func TestFacadeEndToEndHongKong(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	// Full pipeline on a realistic data set: generate, analyze, verify
	// against the independent flooding oracle.
	tr, err := GenerateDataset(HongKongConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(tr, DefaultAnalysis())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Diameter99 < 3 || rep.Diameter99 > 9 {
		t.Fatalf("Hong-Kong diameter %d outside the expected band", rep.Diameter99)
	}
	if err := rep.Study.SelfCheck(3, 7); err != nil {
		t.Fatal(err)
	}
	// Success grows with the budget and the week-scale value is
	// substantial (the paper's Figure 9c shape).
	week := rep.SuccessWithin(7 * 24 * time.Hour)
	hour := rep.SuccessWithin(time.Hour)
	if !(week > hour && week > 0.3) {
		t.Fatalf("success shape wrong: hour=%v week=%v", hour, week)
	}
}
