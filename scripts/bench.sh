#!/usr/bin/env bash
# bench.sh — record the repo's performance trajectory.
#
# Runs the core engine and aggregation benchmarks at -cpu 1 and 4 (the
# multicore scaling probes) plus one benchmark per paper exhibit, and
# emits a machine-readable BENCH_<N>.json with ns/op, bytes/op and
# allocs/op per benchmark so successive PRs can compare both speed and
# allocation discipline. A quick-mode experiment run's RUN_REPORT.json
# (validated by scripts/checkreport) is embedded as "run_report", so
# each record also carries end-to-end stage times and metric totals.
#
# The reach-tier stage runs the Study ε-sweep/diameter workload twice —
# DiameterTiered with a warm, serving-sized bounds engine (envelopes
# prewarmed outside the timer, exactly a loaded dataset's state) and
# DiameterExact with the tier off — and emits their same-run ratio as
# "tiered_vs_exact": the warm tiered speedup of the *same workload*,
# same-run so machine drift between records cannot fake or hide a
# speedup. The ratio excludes the one-time envelope build, which is
# recorded separately by ReachBounds (one certifying-resolution build
# plus every hop bound's worst-ratio bracket — the cost a dataset load
# pays once). Records before BENCH_6 computed "tiered_vs_exact" as
# DelayCDFAggregation/ReachBounds — two unrelated workloads — while
# the tiered benchmark ran an engine whose default slot cap could
# never certify on this window/grid; those ratios are not comparable
# to the ones recorded here.
#
# The ingest stage records the streaming pipeline: the marginal cost of
# Extending a warm engine by the final 1% of a trace next to the cold
# rebuild+recompute it replaces (their same-run ratio is emitted as
# "extend_vs_cold"; the ISSUE gate requires extend < 10% of cold, i.e.
# a ratio above 10), plus steady-state Appender throughput in
# contacts/sec ("append_contacts_per_sec") and the end-to-end latency
# of one live epoch — append a batch, snapshot, Extend to queryable —
# as "append_to_queryable_ns".
#
# The loadgen stage measures the serving path under real HTTP load: an
# opportunetd daemon is booted on an ephemeral port and cmd/loadgen
# drives an open-loop RPS ramp through it (default 8:1:1 query mix).
# The validated LOADGEN_REPORT.json is embedded as "loadgen" — one
# latency-vs-rate point per ramp step with per-query-type p50/p90/p99,
# throughput, and shed/degraded/error counts.
#
# Usage: scripts/bench.sh [output.json]
# Without an argument the output is BENCH_<N+1>.json, one past the
# highest index already recorded.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ $# -ge 1 ]; then
    OUT=$1
else
    last=$(ls BENCH_*.json 2>/dev/null |
        sed -nE 's/^BENCH_([0-9]+)\.json$/\1/p' | sort -n | tail -1)
    OUT="BENCH_$(( ${last:-0} + 1 )).json"
fi
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "== quick suite run report =="
go run ./cmd/experiments -quick -report "$TMP/run_report.json" all > /dev/null
go run ./scripts/checkreport "$TMP/run_report.json"

echo "== engine + aggregation, -cpu 1,4 =="
go test -run '^$' -bench 'BenchmarkEngineCompute$|BenchmarkDelayCDFAggregation$' \
    -cpu 1,4 -benchtime 3x . | tee "$TMP/scaling.txt"

echo "== per-exhibit benchmarks (quick mode) =="
go test -run '^$' -bench 'Benchmark(Table1|Figure[0-9]+|PhaseCheck|Forwarding)$' \
    -benchtime 1x . | tee "$TMP/exhibits.txt"

echo "== reach tier: envelope bounds vs exact aggregation =="
go test -run '^$' -bench 'Benchmark(ReachBounds|DiameterTiered|DiameterExact)$' \
    -benchtime 3x . | tee "$TMP/reach.txt"

echo "== timeline index: build, queries, shared-vs-cold engine setup =="
go test -run '^$' -bench 'Benchmark(IndexBuild|Meet|DeriveRemovalView|ComputeSetupShared|ComputeSetupCold)$' \
    -benchtime 10x ./internal/timeline | tee "$TMP/timeline.txt"

echo "== streaming ingest: incremental extend vs cold, append path =="
go test -run '^$' -bench 'Benchmark(IncrementalExtend|ColdRecompute|AppendToQueryable)$' \
    -benchtime 3x ./internal/core | tee "$TMP/ingest.txt"
go test -run '^$' -bench 'Benchmark(AppendThroughput|SegmentMeet)$' \
    -benchtime 1000x ./internal/timeline | tee -a "$TMP/ingest.txt"

echo "== serving path under load: RPS ramp through opportunetd =="
go build -o "$TMP/opportunetd" ./cmd/opportunetd
go build -o "$TMP/tracegen" ./cmd/tracegen
go build -o "$TMP/loadgen" ./cmd/loadgen
"$TMP/tracegen" -random -n 40 -lambda 0.3 -slots 50 -quiet -o "$TMP/feed.trace"
"$TMP/opportunetd" -addr 127.0.0.1:0 -trace synth="$TMP/feed.trace" \
    > /dev/null 2> "$TMP/daemon_err.txt" &
daemon_pid=$!
trap 'kill "$daemon_pid" 2>/dev/null || true; rm -rf "$TMP"' EXIT
addr=
for _ in $(seq 1 600); do
    addr=$(sed -n 's|.*serving queries on http://\([^]]*\)\].*|\1|p' "$TMP/daemon_err.txt" | head -1)
    [ -n "$addr" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "bench: opportunetd never reached serving:" >&2
    cat "$TMP/daemon_err.txt" >&2
    exit 1
fi
# Warm the daemon's caches off the record, then sweep three rates up
# through the 10k+ regime the serving path is sized for.
"$TMP/loadgen" -url "http://$addr" -mode closed -requests 500 -workers 16 -out /dev/null
"$TMP/loadgen" -url "http://$addr" -mode ramp -ramp 2500:12500:5000 \
    -step-duration 2s -workers 256 -out "$TMP/loadgen_report.json"
go run ./scripts/checkreport -loadgen -min-phases 3 "$TMP/loadgen_report.json"
kill -TERM "$daemon_pid" && wait "$daemon_pid" || true

# Benchmark output lines look like:
#   BenchmarkEngineCompute-4   3   123456789 ns/op   61700000 B/op   46494 allocs/op
# The -N suffix is GOMAXPROCS (absent when it equals the default 1-run).
# B/op and allocs/op appear only for benchmarks that call ReportAllocs;
# they are emitted as null when missing so the schema stays uniform.
awk -v host="$(go env GOOS)/$(go env GOARCH)" -v cores="$(nproc)" -v gover="$(go env GOVERSION)" '
BEGIN {
    printf "{\n  \"host\": \"%s\",\n  \"physical_cores\": %s,\n  \"go\": \"%s\",\n  \"benchmarks\": [\n", host, cores, gover
    n = 0
}
/^Benchmark/ {
    name = $1
    nsop = ""; bop = "null"; aop = "null"
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") nsop = $i
        if ($(i+1) == "B/op") bop = $i
        if ($(i+1) == "allocs/op") aop = $i
    }
    if (nsop == "") next
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, nsop, bop, aop
}
END { printf "\n  ]\n}\n" }
' "$TMP/scaling.txt" "$TMP/exhibits.txt" "$TMP/reach.txt" "$TMP/timeline.txt" "$TMP/ingest.txt" > "$TMP/bench.json"

# Tiered-vs-exact speedup from this run's own numbers: the identical
# ε-sweep/diameter workload with a warm bounds tier on vs off.
RATIO=$(awk '
$1 ~ /^BenchmarkDiameterExact(-[0-9]+)?$/ { for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") exact = $i }
$1 ~ /^BenchmarkDiameterTiered(-[0-9]+)?$/ { for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") fast = $i }
END { if (exact && fast) printf "%.2f", exact / fast; else printf "null" }
' "$TMP/reach.txt")

# Streaming-pipeline headline numbers from this run's own lines:
# cold-recompute over incremental-extend (the <10%-of-cold gate wants
# this above 10), the append→queryable epoch latency, and Appender
# throughput (each AppendThroughput op ingests one 512-contact batch).
EXTEND_VS_COLD=$(awk '
$1 ~ /^BenchmarkIncrementalExtend(-[0-9]+)?$/ { for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") ext = $i }
$1 ~ /^BenchmarkColdRecompute(-[0-9]+)?$/ { for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") cold = $i }
END { if (ext && cold) printf "%.2f", cold / ext; else printf "null" }
' "$TMP/ingest.txt")
APPEND_TO_QUERYABLE=$(awk '
$1 ~ /^BenchmarkAppendToQueryable(-[0-9]+)?$/ { for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") lat = $i }
END { if (lat) printf "%s", lat; else printf "null" }
' "$TMP/ingest.txt")
APPEND_RATE=$(awk '
$1 ~ /^BenchmarkAppendThroughput(-[0-9]+)?$/ { for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") ns = $i }
END { if (ns) printf "%.0f", 512 * 1e9 / ns; else printf "null" }
' "$TMP/ingest.txt")

# Splice the ratios and the validated run report into the record: drop
# the closing brace, add the members, close again.
{
    sed '$d' "$TMP/bench.json"
    printf '  ,"tiered_vs_exact": %s\n' "$RATIO"
    printf '  ,"extend_vs_cold": %s\n' "$EXTEND_VS_COLD"
    printf '  ,"append_to_queryable_ns": %s\n' "$APPEND_TO_QUERYABLE"
    printf '  ,"append_contacts_per_sec": %s\n' "$APPEND_RATE"
    printf '  ,"loadgen":\n'
    sed 's/^/  /' "$TMP/loadgen_report.json"
    printf '  ,"run_report":\n'
    sed 's/^/  /' "$TMP/run_report.json"
    printf '}\n'
} > "$OUT"

echo "wrote $OUT"
