// Command checkreport validates a RUN_REPORT.json produced by
// cmd/experiments -report: the schema (version, command, stages,
// metric maps), the stage accounting (serial stage wall times must sum
// to the total within 5%), and optionally that required metric
// families are present and non-zero.
//
// Usage:
//
//	go run ./scripts/checkreport RUN_REPORT.json
//	go run ./scripts/checkreport -require par_tasks_total,core_rows_total RUN_REPORT.json
//
// Exits 1 with a diagnostic on the first violation; CI's obs-smoke job
// uses it as the report gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"opportunet/internal/obs"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "checkreport: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	require := flag.String("require", "", "comma-separated counter names that must be present with a positive value")
	tolerance := flag.Float64("tolerance", 0.05, "allowed relative gap between the stage wall-time sum and the total")
	flag.Parse()
	if flag.NArg() != 1 {
		fail("usage: checkreport [-require names] RUN_REPORT.json")
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var rep obs.RunReport
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		fail("%s: not a run report: %v", path, err)
	}

	if rep.Version != 1 {
		fail("%s: version = %d, want 1", path, rep.Version)
	}
	if rep.Command == "" {
		fail("%s: empty command", path)
	}
	if rep.Workers < 1 {
		fail("%s: workers = %d, want >= 1", path, rep.Workers)
	}
	if rep.WallMS <= 0 {
		fail("%s: wall_ms = %g, want > 0", path, rep.WallMS)
	}
	if len(rep.Stages) == 0 {
		fail("%s: no stages", path)
	}
	if rep.Counters == nil || rep.Gauges == nil || rep.Histograms == nil {
		fail("%s: metric maps missing", path)
	}

	// The stages are serial and contiguous, so their wall times must
	// partition the total: any gap beyond scheduling noise means a phase
	// of the run escaped the accounting.
	sum := 0.0
	for _, s := range rep.Stages {
		if s.Name == "" || s.WallMS < 0 {
			fail("%s: bad stage %+v", path, s)
		}
		sum += s.WallMS
	}
	if gap := math.Abs(rep.WallMS - sum); gap > *tolerance*rep.WallMS {
		fail("%s: stage sum %.3fms vs total %.3fms: gap %.1f%% exceeds %.0f%%",
			path, sum, rep.WallMS, 100*gap/rep.WallMS, 100**tolerance)
	}

	for _, h := range rep.Histograms {
		if h.Count < 0 || h.Quantiles == nil {
			fail("%s: bad histogram snapshot %+v", path, h)
		}
	}

	if *require != "" {
		for _, name := range strings.Split(*require, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			v, ok := rep.Counters[name]
			if !ok {
				fail("%s: required counter %q missing", path, name)
			}
			if v <= 0 {
				fail("%s: required counter %q is %d, want > 0", path, name, v)
			}
		}
	}
	fmt.Printf("checkreport: %s ok (%d stages, %.0fms, %d counters)\n",
		path, len(rep.Stages), rep.WallMS, len(rep.Counters))
}
