// Command checkreport validates a RUN_REPORT.json produced by
// cmd/experiments -report: the schema (version, command, stages,
// metric maps), the stage accounting (serial stage wall times must sum
// to the total within 5%), and optionally that required metric
// families are present and non-zero.
//
// With -loadgen it instead validates a LOADGEN_REPORT.json produced by
// cmd/loadgen: the schedule fingerprint, phase/request accounting, and
// per-query-type latency summaries.
//
// Usage:
//
//	go run ./scripts/checkreport RUN_REPORT.json
//	go run ./scripts/checkreport -require par_tasks_total,core_rows_total RUN_REPORT.json
//	go run ./scripts/checkreport -loadgen -min-phases 3 LOADGEN_REPORT.json
//
// Exits 1 with a diagnostic on the first violation; CI's obs-smoke and
// loadgen-smoke jobs use it as the report gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"opportunet/internal/loadgen"
	"opportunet/internal/obs"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "checkreport: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	require := flag.String("require", "", "comma-separated counter names that must be present with a positive value")
	tolerance := flag.Float64("tolerance", 0.05, "allowed relative gap between the stage wall-time sum and the total")
	lg := flag.Bool("loadgen", false, "validate a LOADGEN_REPORT.json instead of a RUN_REPORT.json")
	minPhases := flag.Int("min-phases", 1, "with -loadgen: minimum phase count (e.g. 3 for a ramp)")
	requireShed := flag.Bool("require-shed", false, "with -loadgen: at least one request must have been shed")
	flag.Parse()
	if flag.NArg() != 1 {
		fail("usage: checkreport [-require names | -loadgen [-min-phases n] [-require-shed]] REPORT.json")
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	if *lg {
		checkLoadgen(path, data, *minPhases, *requireShed)
		return
	}
	var rep obs.RunReport
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		fail("%s: not a run report: %v", path, err)
	}

	if rep.Version != 1 {
		fail("%s: version = %d, want 1", path, rep.Version)
	}
	if rep.Command == "" {
		fail("%s: empty command", path)
	}
	if rep.Workers < 1 {
		fail("%s: workers = %d, want >= 1", path, rep.Workers)
	}
	if rep.WallMS <= 0 {
		fail("%s: wall_ms = %g, want > 0", path, rep.WallMS)
	}
	if len(rep.Stages) == 0 {
		fail("%s: no stages", path)
	}
	if rep.Counters == nil || rep.Gauges == nil || rep.Histograms == nil {
		fail("%s: metric maps missing", path)
	}

	// The stages are serial and contiguous, so their wall times must
	// partition the total: any gap beyond scheduling noise means a phase
	// of the run escaped the accounting.
	sum := 0.0
	for _, s := range rep.Stages {
		if s.Name == "" || s.WallMS < 0 {
			fail("%s: bad stage %+v", path, s)
		}
		sum += s.WallMS
	}
	if gap := math.Abs(rep.WallMS - sum); gap > *tolerance*rep.WallMS {
		fail("%s: stage sum %.3fms vs total %.3fms: gap %.1f%% exceeds %.0f%%",
			path, sum, rep.WallMS, 100*gap/rep.WallMS, 100**tolerance)
	}

	for _, h := range rep.Histograms {
		if h.Count < 0 || h.Quantiles == nil {
			fail("%s: bad histogram snapshot %+v", path, h)
		}
	}

	if *require != "" {
		for _, name := range strings.Split(*require, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			v, ok := rep.Counters[name]
			if !ok {
				fail("%s: required counter %q missing", path, name)
			}
			if v <= 0 {
				fail("%s: required counter %q is %d, want > 0", path, name, v)
			}
		}
	}
	fmt.Printf("checkreport: %s ok (%d stages, %.0fms, %d counters)\n",
		path, len(rep.Stages), rep.WallMS, len(rep.Counters))
}

// checkLoadgen validates a LOADGEN_REPORT.json: identity fields, a
// well-formed schedule fingerprint, and per-phase accounting — every
// request the schedule offered must be represented in exactly one
// per-type count, each type's latency summary must be internally
// ordered (p50 <= p90 <= p99), and each type's worst exchange must be
// attributed to a deterministic lg-<fingerprint>-<index> trace ID.
func checkLoadgen(path string, data []byte, minPhases int, requireShed bool) {
	var rep loadgen.Report
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		fail("%s: not a loadgen report: %v", path, err)
	}
	if rep.Version != 1 {
		fail("%s: version = %d, want 1", path, rep.Version)
	}
	if rep.BaseURL == "" || rep.Dataset == "" || rep.Mix == "" {
		fail("%s: missing identity fields (base_url/dataset/mix)", path)
	}
	if len(rep.Fingerprint) != 64 || strings.Trim(rep.Fingerprint, "0123456789abcdef") != "" {
		fail("%s: schedule_fingerprint %q is not a sha256 hex digest", path, rep.Fingerprint)
	}
	if rep.Requests <= 0 || rep.WallMS <= 0 || rep.Workers < 1 {
		fail("%s: bad run accounting: requests=%d wall_ms=%g workers=%d",
			path, rep.Requests, rep.WallMS, rep.Workers)
	}
	if len(rep.Phases) < minPhases {
		fail("%s: %d phases, want >= %d", path, len(rep.Phases), minPhases)
	}
	total, shed := 0, int64(0)
	for _, ph := range rep.Phases {
		if ph.Name == "" || ph.Requests <= 0 || ph.DurationMS <= 0 || ph.OfferedRPS <= 0 {
			fail("%s: bad phase %+v", path, ph)
		}
		if len(ph.Types) == 0 {
			fail("%s: phase %q measured no query types", path, ph.Name)
		}
		var phaseCount int64
		for kind, ts := range ph.Types {
			phaseCount += ts.Count
			shed += ts.Shed
			if ts.Count <= 0 || ts.Throughput <= 0 {
				fail("%s: phase %q type %s: count=%d throughput=%g",
					path, ph.Name, kind, ts.Count, ts.Throughput)
			}
			if ts.P50MS < 0 || ts.P50MS > ts.P90MS || ts.P90MS > ts.P99MS {
				fail("%s: phase %q type %s: unordered quantiles p50=%g p90=%g p99=%g",
					path, ph.Name, kind, ts.P50MS, ts.P90MS, ts.P99MS)
			}
			if ts.Shed+ts.Degraded+ts.Errors > ts.Count {
				fail("%s: phase %q type %s: dispositions exceed count: %+v",
					path, ph.Name, kind, ts)
			}
			// The worst exchange must resolve back to the daemon: its
			// trace ID is deterministic over the schedule fingerprint.
			if wantPrefix := "lg-" + rep.Fingerprint[:16] + "-"; ts.WorstMS <= 0 ||
				!strings.HasPrefix(ts.WorstTraceID, wantPrefix) {
				fail("%s: phase %q type %s: worst exchange unattributed: worst_ms=%g worst_trace_id=%q (want prefix %s)",
					path, ph.Name, kind, ts.WorstMS, ts.WorstTraceID, wantPrefix)
			}
		}
		if int(phaseCount) != ph.Requests {
			fail("%s: phase %q counts sum to %d, offered %d", path, ph.Name, phaseCount, ph.Requests)
		}
		total += ph.Requests
	}
	if total != rep.Requests {
		fail("%s: phase requests sum to %d, run claims %d", path, total, rep.Requests)
	}
	if requireShed && shed == 0 {
		fail("%s: no request was shed (want >= 1 under overload)", path)
	}
	fmt.Printf("checkreport: %s ok (%d phases, %d requests, %d shed, fingerprint %s)\n",
		path, len(rep.Phases), rep.Requests, shed, rep.Fingerprint[:12])
}
