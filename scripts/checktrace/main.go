// Command checktrace validates an opportunetd access log (the
// -access-log JSONL stream): every line must be an `"ev":"req"`
// request record or an `"ev":"trace"` slow-request event dump.
//
// For req lines it checks the full attribution schema — a non-empty
// trace ID and endpoint, a legal disposition and coalesce role, a
// plausible HTTP status — and the accounting invariants: every stage
// component is non-negative, the queue + compute + encode partition
// fits inside the end-to-end total within -tolerance, and a request
// that carried a deadline never reports using more of it than it had.
//
// For trace lines it checks the dump is attributable (its trace ID
// matches a req line in the same log), opens with the "start" event,
// and that event timestamps are monotone non-decreasing.
//
// Usage:
//
//	go run ./scripts/checktrace access.log
//	go run ./scripts/checktrace -require-dispositions ok,shed,degraded access.log
//
// Exits 1 with a line-attributed diagnostic on the first violation;
// CI's server-smoke and loadgen-smoke jobs use it as the tracing gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"opportunet/internal/obs"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "checktrace: "+format+"\n", args...)
	os.Exit(1)
}

// reqLine mirrors the access-log schema documented in
// internal/server/accesslog.go; DisallowUnknownFields keeps the two in
// lockstep.
type reqLine struct {
	Ev          string `json:"ev"`
	TUnixNS     int64  `json:"t_unix_ns"`
	TraceID     string `json:"trace_id"`
	Endpoint    string `json:"endpoint"`
	Dataset     string `json:"dataset"`
	Status      int    `json:"status"`
	Disposition string `json:"disposition"`
	QueueNS     int64  `json:"queue_ns"`
	ComputeNS   int64  `json:"compute_ns"`
	EncodeNS    int64  `json:"encode_ns"`
	TotalNS     int64  `json:"total_ns"`
	DeadlineNS  int64  `json:"deadline_ns"`
	UsedNS      int64  `json:"used_ns"`
	Coalesce    string `json:"coalesce"`
	Bytes       int64  `json:"bytes"`
}

type traceLine struct {
	Ev string `json:"ev"`
	obs.TraceSnapshot
}

var coalesceRoles = map[string]bool{"leader": true, "follower": true, "none": true}

func main() {
	tolerance := flag.Float64("tolerance", 0.05, "allowed relative overshoot of queue+compute+encode past total_ns")
	requireDisp := flag.String("require-dispositions", "", "comma-separated dispositions that must each appear on at least one req line")
	flag.Parse()
	if flag.NArg() != 1 {
		fail("usage: checktrace [-tolerance f] [-require-dispositions names] ACCESS_LOG")
	}
	path := flag.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()

	var (
		reqs, dumps int
		ids         = map[string]bool{}
		dispSeen    = map[string]bool{}
		traces      []traceLine
		traceAt     []int
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24) // event dumps can be long lines
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Ev string `json:"ev"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			fail("%s:%d: not JSON: %v", path, lineNo, err)
		}
		switch probe.Ev {
		case "req":
			var r reqLine
			dec := json.NewDecoder(strings.NewReader(string(line)))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&r); err != nil {
				fail("%s:%d: req line off schema: %v", path, lineNo, err)
			}
			checkReq(path, lineNo, &r, *tolerance)
			reqs++
			ids[r.TraceID] = true
			dispSeen[r.Disposition] = true
		case "trace":
			var tl traceLine
			if err := json.Unmarshal(line, &tl); err != nil {
				fail("%s:%d: trace dump off schema: %v", path, lineNo, err)
			}
			checkDump(path, lineNo, &tl)
			dumps++
			// Attribution is checked after the full read: the dump's req
			// line is adjacent today, but the contract is only "same log".
			traces = append(traces, tl)
			traceAt = append(traceAt, lineNo)
		default:
			fail("%s:%d: unknown ev %q", path, lineNo, probe.Ev)
		}
	}
	if err := sc.Err(); err != nil {
		fail("%s: %v", path, err)
	}
	if reqs == 0 {
		fail("%s: no req lines", path)
	}
	for i, tl := range traces {
		if !ids[tl.ID] {
			fail("%s:%d: trace dump %q matches no req line", path, traceAt[i], tl.ID)
		}
	}
	for _, want := range strings.Split(*requireDisp, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		if _, ok := obs.ParseDisposition(want); !ok {
			fail("-require-dispositions: unknown disposition %q", want)
		}
		if !dispSeen[want] {
			fail("%s: no request ended %s (have: %s)", path, want, strings.Join(keys(dispSeen), ","))
		}
	}
	fmt.Printf("checktrace: %s ok (%d requests, %d slow dumps, dispositions: %s)\n",
		path, reqs, dumps, strings.Join(keys(dispSeen), ","))
}

func checkReq(path string, n int, r *reqLine, tol float64) {
	if r.TraceID == "" || r.Endpoint == "" {
		fail("%s:%d: empty trace_id or endpoint: %+v", path, n, r)
	}
	if _, ok := obs.ParseDisposition(r.Disposition); !ok {
		fail("%s:%d: unknown disposition %q", path, n, r.Disposition)
	}
	if !coalesceRoles[r.Coalesce] {
		fail("%s:%d: unknown coalesce role %q", path, n, r.Coalesce)
	}
	if r.Status < 100 || r.Status > 599 {
		fail("%s:%d: implausible status %d", path, n, r.Status)
	}
	if r.TUnixNS <= 0 || r.TotalNS <= 0 {
		fail("%s:%d: non-positive timestamps: t_unix_ns=%d total_ns=%d", path, n, r.TUnixNS, r.TotalNS)
	}
	if r.QueueNS < 0 || r.ComputeNS < 0 || r.EncodeNS < 0 || r.Bytes < 0 {
		fail("%s:%d: negative component: %+v", path, n, r)
	}
	// The stages are disjoint slices of the request's life, so their sum
	// can only exceed the total by clock-read granularity.
	if sum := r.QueueNS + r.ComputeNS + r.EncodeNS; float64(sum) > float64(r.TotalNS)*(1+tol) {
		fail("%s:%d: queue+compute+encode = %dns exceeds total %dns beyond %.0f%%",
			path, n, sum, r.TotalNS, 100*tol)
	}
	if r.DeadlineNS > 0 && r.UsedNS > r.DeadlineNS {
		fail("%s:%d: used_ns %d exceeds deadline_ns %d", path, n, r.UsedNS, r.DeadlineNS)
	}
	if r.Disposition == "ok" && r.Bytes == 0 {
		fail("%s:%d: ok request wrote no bytes", path, n)
	}
}

func checkDump(path string, n int, tl *traceLine) {
	if len(tl.Events) == 0 {
		fail("%s:%d: trace dump has no events", path, n)
	}
	if tl.Events[0].Kind != "start" {
		fail("%s:%d: trace dump opens with %q, want start", path, n, tl.Events[0].Kind)
	}
	for i := 1; i < len(tl.Events); i++ {
		if tl.Events[i].AtNS < tl.Events[i-1].AtNS {
			fail("%s:%d: events not monotone: %s@%d after %s@%d", path, n,
				tl.Events[i].Kind, tl.Events[i].AtNS, tl.Events[i-1].Kind, tl.Events[i-1].AtNS)
		}
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for _, d := range []string{"ok", "shed", "degraded", "error"} {
		if m[d] {
			out = append(out, d)
		}
	}
	return out
}
