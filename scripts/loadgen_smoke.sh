#!/usr/bin/env bash
# loadgen_smoke.sh — end-to-end gate for the cmd/loadgen load driver.
#
# Boots opportunetd on an ephemeral port over a generated trace, then
# proves the generator's three contracts against the live daemon:
#
#   1. Determinism: two -dry-run invocations with the same seed print
#      the identical schedule fingerprint; a different seed does not.
#   2. Measurement: a closed-loop run of the default 8:1:1 mix reports
#      nonzero throughput for every query type with zero errors and
#      zero sheds against an uncontended daemon, and the report passes
#      checkreport -loadgen.
#   3. Overload: a burst volley larger than -max-inflight + -max-queue
#      is partially shed (>= 1 429 counted in the report), because the
#      volley's distinct diameter grids defeat both the curve cache and
#      request coalescing.
#   4. Attribution: every request carries a deterministic
#      lg-<fingerprint>-<index> trace ID, the report names the slowest
#      exchange per (phase, type) by that ID, and the ID resolves to a
#      req line in the daemon's access log (validated by checktrace).
#
# Usage: scripts/loadgen_smoke.sh [output-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

OUTDIR=${1:-$(mktemp -d)}
mkdir -p "$OUTDIR"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/opportunetd" ./cmd/opportunetd
go build -o "$TMP/tracegen" ./cmd/tracegen
go build -o "$TMP/loadgen" ./cmd/loadgen
go build -o "$TMP/checkreport" ./scripts/checkreport
go build -o "$TMP/checktrace" ./scripts/checktrace

# A random discrete-time trace loads in milliseconds and is dense
# enough that most sampled pairs deliver inside the window.
"$TMP/tracegen" -random -n 40 -lambda 0.3 -slots 50 -quiet -o "$TMP/feed.trace"

# Four slots and four queue seats: roomy enough that the closed-loop
# phase (2 workers) never sheds, tight enough that the 64-request burst
# volley must.
"$TMP/opportunetd" -addr 127.0.0.1:0 -trace synth="$TMP/feed.trace" \
    -max-inflight 4 -max-queue 4 -queue-wait 250ms \
    -access-log "$TMP/access.log" \
    > /dev/null 2> "$TMP/err.txt" &
pid=$!
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$TMP"' EXIT

addr=
for _ in $(seq 1 600); do
    addr=$(sed -n 's|.*serving queries on http://\([^]]*\)\].*|\1|p' "$TMP/err.txt" | head -1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "loadgen_smoke: daemon never reached serving:" >&2
    cat "$TMP/err.txt" >&2
    exit 1
fi

fail() { echo "loadgen_smoke: $*" >&2; cat "$TMP/err.txt" >&2; exit 1; }

# ---- determinism: the schedule is a pure function of the seed -------
"$TMP/loadgen" -url "http://$addr" -dry-run -mode closed -requests 400 -seed 11 > "$TMP/fp1.txt"
"$TMP/loadgen" -url "http://$addr" -dry-run -mode closed -requests 400 -seed 11 > "$TMP/fp2.txt"
"$TMP/loadgen" -url "http://$addr" -dry-run -mode closed -requests 400 -seed 12 > "$TMP/fp3.txt"
cmp -s "$TMP/fp1.txt" "$TMP/fp2.txt" \
    || fail "same-seed dry runs disagree: $(cat "$TMP/fp1.txt" "$TMP/fp2.txt")"
cmp -s "$TMP/fp1.txt" "$TMP/fp3.txt" \
    && fail "different seeds printed the same fingerprint: $(cat "$TMP/fp1.txt")"
echo "loadgen_smoke: $(head -1 "$TMP/fp1.txt") stable across reruns"

# ---- closed-loop mix measures every query type ----------------------
"$TMP/loadgen" -url "http://$addr" -mode closed -requests 400 -seed 11 \
    -workers 2 -out "$OUTDIR/LOADGEN_REPORT.json"
"$TMP/checkreport" -loadgen "$OUTDIR/LOADGEN_REPORT.json" \
    || fail "closed-loop report failed validation"
for kind in path diameter delaycdf; do
    grep -q "\"$kind\"" "$OUTDIR/LOADGEN_REPORT.json" \
        || fail "query type $kind absent from the closed-loop report"
done
grep -q '"shed": 0' "$OUTDIR/LOADGEN_REPORT.json" \
    || fail "uncontended closed loop shed requests: $(cat "$OUTDIR/LOADGEN_REPORT.json")"
rfp=$(sed -n 's/.*"schedule_fingerprint": "\([0-9a-f]*\)".*/\1/p' "$OUTDIR/LOADGEN_REPORT.json")
dfp=$(sed -n 's/^schedule_fingerprint \([0-9a-f]*\)$/\1/p' "$TMP/fp1.txt")
[ "$rfp" = "$dfp" ] || fail "report fingerprint $rfp differs from dry-run fingerprint $dfp"
echo "loadgen_smoke: closed-loop mix measured all three query types, zero shed"

# ---- the report's tail resolves into the daemon's access log --------
# Every generated request carried a deterministic lg-<fp>-<index> trace
# ID; the report names the slowest exchange per type, and that exact ID
# must appear on a req line the daemon logged.
for wid in $(sed -n 's/.*"worst_trace_id": "\([^"]*\)".*/\1/p' "$OUTDIR/LOADGEN_REPORT.json"); do
    case "$wid" in
        lg-*) ;;
        *) fail "worst_trace_id $wid is not a deterministic loadgen ID" ;;
    esac
    grep -q "\"trace_id\":\"$wid\"" "$TMP/access.log" \
        || fail "worst trace $wid absent from the daemon access log"
done
nworst=$(grep -c '"worst_trace_id"' "$OUTDIR/LOADGEN_REPORT.json")
[ "$nworst" -ge 3 ] || fail "report names only $nworst worst traces, want one per type"
echo "loadgen_smoke: $nworst worst-latency trace IDs resolve in the access log"

# ---- burst beyond the admission budget is shed ----------------------
"$TMP/loadgen" -url "http://$addr" -mode burst -requests 64 -seed 11 \
    -out "$OUTDIR/LOADGEN_BURST.json"
"$TMP/checkreport" -loadgen -require-shed "$OUTDIR/LOADGEN_BURST.json" \
    || fail "burst volley beyond -max-inflight+-max-queue produced no shed"
shed=$(sed -n 's/.*"shed": \([0-9]*\).*/\1/p' "$OUTDIR/LOADGEN_BURST.json" | head -1)
echo "loadgen_smoke: burst of 64 against 4+4 admission shed $shed"

kill -TERM "$pid"
wait "$pid" || fail "daemon exited nonzero after SIGTERM"

# The whole run's access log — closed loop and burst — validates on
# schema and stage accounting, and the burst must have logged sheds.
"$TMP/checktrace" -require-dispositions ok,shed "$TMP/access.log" \
    || fail "access log failed checktrace validation"

cp "$TMP/access.log" "$OUTDIR/access.log"
cp "$TMP/err.txt" "$OUTDIR/opportunetd_stderr.txt"
echo "loadgen smoke passed (artifacts in $OUTDIR)"
