#!/usr/bin/env bash
# obs_smoke.sh — end-to-end gate for the observability layer.
#
# Runs the quick experiment suite with the obs endpoint on an ephemeral
# port, curls /metrics, /debug/vars and /debug/pprof mid-run, asserts
# the expected metric families are exposed, and validates the final
# RUN_REPORT.json (schema, 5% stage accounting, required counters) with
# scripts/checkreport. The report and span log land in the output
# directory so CI can archive them.
#
# A second phase replays a streamed synthetic trace through cmd/ingest
# with a tight eviction window and scrapes /metrics throughout the run:
# the segment lifecycle (append, seal, merge, evict) and the ingest
# loop (epochs, batches, append-to-queryable latency) must all expose
# their families live, and the core ones must actually move during the
# replay. The ingest run report passes the same checkreport gate.
#
# Usage: scripts/obs_smoke.sh [output-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

OUTDIR=${1:-$(mktemp -d)}
mkdir -p "$OUTDIR"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/experiments" ./cmd/experiments

"$TMP/experiments" -quick -obsaddr 127.0.0.1:0 \
    -report "$OUTDIR/RUN_REPORT.json" -obslog "$OUTDIR/spans.jsonl" \
    all > "$TMP/out.txt" 2> "$TMP/err.txt" &
pid=$!

# The bound address is logged to stderr as soon as the listener is up.
addr=
for _ in $(seq 1 100); do
    addr=$(sed -n 's|.*on http://\([^]]*\)\].*|\1|p' "$TMP/err.txt" | head -1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "obs_smoke: no obs address appeared on stderr:" >&2
    cat "$TMP/err.txt" >&2
    kill "$pid" 2>/dev/null || true
    exit 1
fi

# Mid-run, all three endpoint families must respond.
curl -fsS "http://$addr/metrics" > "$TMP/metrics.txt"
curl -fsS "http://$addr/debug/vars" | grep -q '"opportunet"'
curl -fsS "http://$addr/debug/pprof/" > /dev/null

wait "$pid"

# Every instrumented layer must expose its families on /metrics.
for fam in par_tasks_total core_rows_total core_extensions_attempted_total \
           timeline_index_builds_total analysis_curve_cache_misses_total \
           checkpoint_hits_total experiments_completed_total; do
    grep -q "^# TYPE $fam " "$TMP/metrics.txt" || {
        echo "obs_smoke: metric family $fam missing from /metrics" >&2
        exit 1
    }
done

# The suite must still have produced its real output.
[ -s "$TMP/out.txt" ] || { echo "obs_smoke: empty experiment output" >&2; exit 1; }
[ -s "$OUTDIR/spans.jsonl" ] || { echo "obs_smoke: empty span log" >&2; exit 1; }

# Report gate: schema, 5% stage accounting, and live counters from the
# engine up through the experiment harness.
go run ./scripts/checkreport \
    -require par_tasks_total,core_rows_total,core_computes_total,experiments_completed_total \
    "$OUTDIR/RUN_REPORT.json"

# ---- ingest replay phase -------------------------------------------
# Stream a synthetic dataset to disk, replay it through cmd/ingest with
# a seal cadence and eviction window tight enough that every segment
# lifecycle transition fires, and scrape /metrics for the whole run.

go build -o "$TMP/ingest" ./cmd/ingest
go build -o "$TMP/tracegen" ./cmd/tracegen
"$TMP/tracegen" -dataset infocom05 -stream -quiet -o "$TMP/feed.trace"

"$TMP/ingest" -i "$TMP/feed.trace" -seal 1024 -epoch 4000 -evict 20000 \
    -summary=false -obsaddr 127.0.0.1:0 -report "$OUTDIR/INGEST_REPORT.json" \
    < /dev/null > /dev/null 2> "$TMP/ingest_err.txt" &
pid=$!

addr=
for _ in $(seq 1 100); do
    addr=$(sed -n 's|.*on http://\([^]]*\)\].*|\1|p' "$TMP/ingest_err.txt" | head -1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "obs_smoke: no obs address appeared on ingest stderr:" >&2
    cat "$TMP/ingest_err.txt" >&2
    kill "$pid" 2>/dev/null || true
    exit 1
fi

# Scrape continuously while the replay runs, keeping the freshest
# successful scrape: the asserted snapshot is genuinely mid-flight.
while kill -0 "$pid" 2>/dev/null; do
    if curl -fsS "http://$addr/metrics" > "$TMP/ingest_metrics.tmp" 2>/dev/null; then
        mv "$TMP/ingest_metrics.tmp" "$TMP/ingest_metrics.txt"
    fi
    sleep 0.2
done
wait "$pid"
cp "$TMP/ingest_metrics.txt" "$OUTDIR/ingest_metrics.txt"

# Every streaming family must be exposed during a live replay.
for fam in ingest_epochs_total ingest_batches_total ingest_extend_seconds \
           ingest_append_to_queryable_seconds timeline_appended_contacts_total \
           timeline_segment_seals_total timeline_segment_merges_total \
           timeline_merge_contacts_rewritten_total timeline_segments_evicted_total \
           timeline_contacts_evicted_total timeline_live_segments; do
    grep -q "^# TYPE $fam " "$TMP/ingest_metrics.txt" || {
        echo "obs_smoke: metric family $fam missing from ingest /metrics" >&2
        exit 1
    }
done

# And the lifecycle counters must have moved: contacts appended,
# segments sealed, merged, and evicted, epochs extended.
for fam in timeline_appended_contacts_total timeline_segment_seals_total \
           timeline_segment_merges_total timeline_contacts_evicted_total \
           ingest_epochs_total ingest_batches_total; do
    awk -v fam="$fam" '$1 == fam { found = 1; if ($2 + 0 > 0) ok = 1 }
        END { exit !(found && ok) }' "$TMP/ingest_metrics.txt" || {
        echo "obs_smoke: counter $fam never moved during the ingest replay" >&2
        exit 1
    }
done

go run ./scripts/checkreport \
    -require ingest_epochs_total,timeline_appended_contacts_total,timeline_segment_seals_total \
    "$OUTDIR/INGEST_REPORT.json"

echo "obs smoke passed (artifacts in $OUTDIR)"
