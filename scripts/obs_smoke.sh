#!/usr/bin/env bash
# obs_smoke.sh — end-to-end gate for the observability layer.
#
# Runs the quick experiment suite with the obs endpoint on an ephemeral
# port, curls /metrics, /debug/vars and /debug/pprof mid-run, asserts
# the expected metric families are exposed, and validates the final
# RUN_REPORT.json (schema, 5% stage accounting, required counters) with
# scripts/checkreport. The report and span log land in the output
# directory so CI can archive them.
#
# Usage: scripts/obs_smoke.sh [output-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

OUTDIR=${1:-$(mktemp -d)}
mkdir -p "$OUTDIR"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/experiments" ./cmd/experiments

"$TMP/experiments" -quick -obsaddr 127.0.0.1:0 \
    -report "$OUTDIR/RUN_REPORT.json" -obslog "$OUTDIR/spans.jsonl" \
    all > "$TMP/out.txt" 2> "$TMP/err.txt" &
pid=$!

# The bound address is logged to stderr as soon as the listener is up.
addr=
for _ in $(seq 1 100); do
    addr=$(sed -n 's|.*on http://\([^]]*\)\].*|\1|p' "$TMP/err.txt" | head -1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "obs_smoke: no obs address appeared on stderr:" >&2
    cat "$TMP/err.txt" >&2
    kill "$pid" 2>/dev/null || true
    exit 1
fi

# Mid-run, all three endpoint families must respond.
curl -fsS "http://$addr/metrics" > "$TMP/metrics.txt"
curl -fsS "http://$addr/debug/vars" | grep -q '"opportunet"'
curl -fsS "http://$addr/debug/pprof/" > /dev/null

wait "$pid"

# Every instrumented layer must expose its families on /metrics.
for fam in par_tasks_total core_rows_total core_extensions_attempted_total \
           timeline_index_builds_total analysis_curve_cache_misses_total \
           checkpoint_hits_total experiments_completed_total; do
    grep -q "^# TYPE $fam " "$TMP/metrics.txt" || {
        echo "obs_smoke: metric family $fam missing from /metrics" >&2
        exit 1
    }
done

# The suite must still have produced its real output.
[ -s "$TMP/out.txt" ] || { echo "obs_smoke: empty experiment output" >&2; exit 1; }
[ -s "$OUTDIR/spans.jsonl" ] || { echo "obs_smoke: empty span log" >&2; exit 1; }

# Report gate: schema, 5% stage accounting, and live counters from the
# engine up through the experiment harness.
go run ./scripts/checkreport \
    -require par_tasks_total,core_rows_total,core_computes_total,experiments_completed_total \
    "$OUTDIR/RUN_REPORT.json"

echo "obs smoke passed (artifacts in $OUTDIR)"
