#!/usr/bin/env bash
# server_smoke.sh — end-to-end gate for the opportunetd query daemon.
#
# Builds opportunetd, loads a generated infocom05-class trace on an
# ephemeral port, and drives the full serving contract through real
# HTTP: warm queries answer exactly, a 1 ms deadline degrades the same
# query to certified bounds that contain the exact answer, a burst of
# uncoalescable queries against a single execution slot is shed with
# 429 + Retry-After, the serving metric families are live on /metrics
# with the shed and degraded counters moved, and SIGTERM drains to exit
# 0 with no request left in flight (asserted from the daemon's own
# drain accounting).
#
# The tracing contract rides the same run: a client X-Trace-Id round
# trips through the response header into the access log, the flight
# recorder at /debug/requests holds the shed and degraded requests
# mid-run, slow requests dump full event traces, and scripts/checktrace
# validates the whole access log's schema and stage accounting.
#
# Usage: scripts/server_smoke.sh [output-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

OUTDIR=${1:-$(mktemp -d)}
mkdir -p "$OUTDIR"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/opportunetd" ./cmd/opportunetd
go build -o "$TMP/tracegen" ./cmd/tracegen
go build -o "$TMP/checktrace" ./scripts/checktrace
"$TMP/tracegen" -dataset infocom05 -quiet -o "$TMP/feed.trace"

# One execution slot, one queue seat, a short queue wait: the overload
# phase below only needs three concurrent queries to prove shedding.
# -slow-ms 1 guarantees the cold exact queries dump full event traces.
"$TMP/opportunetd" -addr 127.0.0.1:0 -trace "$TMP/feed.trace" \
    -max-inflight 1 -max-queue 1 -queue-wait 250ms \
    -access-log "$TMP/access.log" -slow-ms 1 \
    -obsaddr 127.0.0.1:0 > /dev/null 2> "$TMP/err.txt" &
pid=$!
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$TMP"' EXIT

# Both listeners log their bound address to stderr; the query address
# only appears once the datasets finished loading (~10 s for infocom05).
addr= obsaddr=
for _ in $(seq 1 600); do
    addr=$(sed -n 's|.*serving queries on http://\([^]]*\)\].*|\1|p' "$TMP/err.txt" | head -1)
    obsaddr=$(sed -n 's|.*\[obs: serving .* on http://\([^]]*\)\].*|\1|p' "$TMP/err.txt" | head -1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
done
if [ -z "$addr" ] || [ -z "$obsaddr" ]; then
    echo "server_smoke: daemon never reached serving (addr=$addr obs=$obsaddr):" >&2
    cat "$TMP/err.txt" >&2
    exit 1
fi

fail() { echo "server_smoke: $*" >&2; cat "$TMP/err.txt" >&2; exit 1; }

curl -fsS "http://$addr/healthz" > /dev/null || fail "/healthz not ok"
curl -fsS "http://$addr/readyz" > /dev/null || fail "/readyz not ready after load"
curl -fsS "http://$addr/v1/datasets" | grep -q '"infocom05"' \
    || fail "/v1/datasets does not list the loaded trace"

# ---- degradation before exact ---------------------------------------
# A 1 ms deadline cannot fit the cold exact integration, so the daemon
# must answer from the prewarmed bounds tier and say so. Asking before
# any exact query keeps this deterministic: nothing is cached yet.
curl -sS "http://$addr/v1/diameter?deadline_ms=1" > "$TMP/degraded.json"
grep -q '"degraded":"bounds-only"' "$TMP/degraded.json" \
    || fail "1 ms diameter did not degrade: $(cat "$TMP/degraded.json")"
lo=$(sed -n 's/.*"diameter_lo":\([0-9]*\).*/\1/p' "$TMP/degraded.json")
hi=$(sed -n 's/.*"diameter_hi":\([0-9]*\).*/\1/p' "$TMP/degraded.json")
[ -n "$lo" ] && [ -n "$hi" ] || fail "degraded answer carries no bounds: $(cat "$TMP/degraded.json")"

curl -sS "http://$addr/v1/delaycdf?hops=1,0&deadline_ms=1" > "$TMP/cdf.json"
grep -q '"degraded":"bounds-only"' "$TMP/cdf.json" \
    || fail "1 ms delaycdf did not degrade: $(head -c 300 "$TMP/cdf.json")"

# ---- warm exact queries ---------------------------------------------
curl -fsS "http://$addr/v1/diameter" > "$TMP/exact.json" || fail "exact diameter query failed"
d=$(grep -o '"diameter":[0-9]*' "$TMP/exact.json" | head -1 | cut -d: -f2)
[ -n "$d" ] || fail "no diameter in exact answer: $(cat "$TMP/exact.json")"
awk -v lo="$lo" -v d="$d" -v hi="$hi" 'BEGIN { exit !(lo <= d && d <= hi) }' \
    || fail "degraded bounds [$lo, $hi] do not contain the exact diameter $d"
echo "server_smoke: exact diameter $d inside degraded bounds [$lo, $hi]"

curl -fsS "http://$addr/v1/path?src=1&dst=5&t=0&reconstruct=1" > "$TMP/path.json" \
    || fail "path query failed"
grep -q '"delivered":' "$TMP/path.json" || fail "path answer malformed: $(cat "$TMP/path.json")"

# ---- trace IDs round trip -------------------------------------------
# A client-supplied X-Trace-Id must be adopted, echoed on the response,
# and land on that request's access-log line; absent the header the
# daemon generates one and still echoes it.
tid="smoke-trace-$$"
curl -fsS -D "$TMP/tid_hdr.txt" -H "X-Trace-Id: $tid" \
    "http://$addr/v1/path?src=1&dst=5&t=0" > /dev/null || fail "traced path query failed"
grep -qi "^X-Trace-Id: $tid" "$TMP/tid_hdr.txt" \
    || fail "client trace ID not echoed: $(cat "$TMP/tid_hdr.txt")"
grep -q "\"trace_id\":\"$tid\"" "$TMP/access.log" \
    || fail "client trace ID $tid absent from the access log"
curl -fsS -D "$TMP/gen_hdr.txt" "http://$addr/v1/path?src=1&dst=5&t=0" > /dev/null
grep -qiE '^X-Trace-Id: [0-9a-f]{16}' "$TMP/gen_hdr.txt" \
    || fail "daemon generated no trace ID: $(cat "$TMP/gen_hdr.txt")"
echo "server_smoke: trace ID $tid round-tripped into the access log"

# ---- overload sheds with 429 ----------------------------------------
# Twenty concurrent diameter queries on distinct grids (distinct points
# defeat both the curve cache and coalescing) against one slot and one
# queue seat: one computes, one waits, the rest must shed immediately.
: > "$TMP/codes.txt"
(
    for i in $(seq 100 119); do
        curl -s -D "$TMP/hdr.$i" -o /dev/null -w '%{http_code}\n' \
            "http://$addr/v1/diameter?points=$i&deadline_ms=5000" >> "$TMP/codes.txt" &
    done
    wait
)
shed=$(grep -c '^429$' "$TMP/codes.txt" || true)
served=$(grep -c '^200$' "$TMP/codes.txt" || true)
[ "$shed" -ge 1 ] || fail "overload burst produced no 429 (codes: $(sort "$TMP/codes.txt" | uniq -c | tr '\n' ' '))"
[ "$served" -ge 1 ] || fail "overload burst starved every query (codes: $(sort "$TMP/codes.txt" | uniq -c | tr '\n' ' '))"
ra=0
for h in "$TMP"/hdr.*; do
    if head -1 "$h" | grep -q ' 429' && grep -qi '^Retry-After:' "$h"; then
        ra=1
        break
    fi
done
[ "$ra" = 1 ] || fail "shed responses carry no Retry-After header"
echo "server_smoke: overload shed $shed of 20 queries with 429, served $served"

# ---- the flight recorder explains the tail mid-run ------------------
# With the burst settled, /debug/requests must still hold the shed and
# degraded requests (tail-biased retention keeps every non-ok trace),
# and the disposition filter must narrow to exactly that class.
curl -fsS "http://$addr/debug/requests" > "$OUTDIR/debug_requests.json" \
    || fail "/debug/requests unavailable"
grep -q '"disposition":"shed"' "$OUTDIR/debug_requests.json" \
    || fail "recorder holds no shed request after the burst"
grep -q '"disposition":"degraded"' "$OUTDIR/debug_requests.json" \
    || fail "recorder holds no degraded request"
curl -fsS "http://$addr/debug/requests?disposition=shed" > "$TMP/shed.json"
grep -q '"disposition":"shed"' "$TMP/shed.json" || fail "disposition filter lost the shed traces"
grep -q '"disposition":"ok"' "$TMP/shed.json" && fail "disposition=shed filter leaked ok traces"
echo "server_smoke: /debug/requests holds shed + degraded traces mid-run"

# ---- serving metrics are live ---------------------------------------
curl -fsS "http://$obsaddr/metrics" > "$OUTDIR/server_metrics.txt"
for fam in server_requests_started_total server_requests_finished_total \
           server_admitted_total server_shed_queue_full_total server_shed_wait_total \
           server_inflight server_queue_depth server_queue_wait_seconds \
           server_request_seconds server_degraded_total server_deadline_exceeded_total \
           server_panics_recovered_total server_flights_total server_coalesced_total; do
    grep -q "^# TYPE $fam " "$OUTDIR/server_metrics.txt" \
        || fail "metric family $fam missing from /metrics"
done
for fam in server_requests_started_total server_admitted_total \
           server_shed_queue_full_total server_degraded_total; do
    awk -v fam="$fam" '$1 == fam { found = 1; if ($2 + 0 > 0) ok = 1 }
        END { exit !(found && ok) }' "$OUTDIR/server_metrics.txt" \
        || fail "counter $fam never moved"
done
# With the burst settled, nothing may be left holding a slot.
awk '$1 == "server_inflight" && $2 + 0 != 0 { bad = 1 } END { exit bad }' \
    "$OUTDIR/server_metrics.txt" \
    || fail "server_inflight nonzero after the burst settled"

# ---- SIGTERM drains cleanly -----------------------------------------
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
[ "$rc" = 0 ] || fail "daemon exited $rc after SIGTERM, want 0"
drained=$(grep -o 'drained (clean): started=[0-9]* finished=[0-9]* inflight=[0-9]*' "$TMP/err.txt" | head -1)
[ -n "$drained" ] || fail "no clean drain line on stderr"
started=$(echo "$drained" | sed -n 's/.*started=\([0-9]*\).*/\1/p')
finished=$(echo "$drained" | sed -n 's/.*finished=\([0-9]*\).*/\1/p')
inflight=$(echo "$drained" | sed -n 's/.*inflight=\([0-9]*\).*/\1/p')
[ "$started" = "$finished" ] && [ "$inflight" = 0 ] \
    || fail "drain leaked requests: $drained"
echo "server_smoke: drained clean, started=$started finished=$finished inflight=$inflight"

# ---- the access log validates end to end ----------------------------
# Every line on schema, stage partitions inside totals, slow dumps
# monotone and attributable; the run must have produced all three
# interesting dispositions plus at least one slow trace dump.
"$TMP/checktrace" -require-dispositions ok,degraded,shed "$TMP/access.log" \
    || fail "access log failed checktrace validation"
grep -q '"ev":"trace"' "$TMP/access.log" \
    || fail "no slow-request trace dump despite -slow-ms 1"

cp "$TMP/access.log" "$OUTDIR/access.log"
cp "$TMP/err.txt" "$OUTDIR/opportunetd_stderr.txt"
echo "server smoke passed (artifacts in $OUTDIR)"
